"""The Fig. 11 necessity gallery: five program pairs, one per PS-PDG feature.

Each pair consists of a *fast* and a *slow* program that lower to the same
instruction stream but have different parallel semantics.  Their full
PS-PDGs differ; remove the targeted feature and the two become
indistinguishable — which is exactly the paper's necessity argument,
executed.

Where our IR-identical construction needed an adaptation from the paper's
exact listings, it is noted on the pair:

* **A (hierarchical nodes + undirected edges)**: orderless ``critical``
  vs iteration-``ordered`` update of a shared histogram.
* **B (node traits)**: ``single`` region vs an ``ordered`` region around
  the same output statement (the paper contrasts single vs no-single; the
  ordered region keeps the lowered IR identical while carrying no trait).
* **C (contexts)**: inner loop declared independent (``omp for``) vs the
  same inner loop wrapped in an ``ordered`` region — the independence
  declaration is valid only in the inner-loop context, which is precisely
  what vanishes without contexts.
* **D (data-selector directed edges)**: ``anyvalue`` live-out (any
  iteration's value may propagate) vs ``lastprivate`` (the last
  iteration's value must).
* **E (parallel semantic variables)**: a ``reduction`` under a critical
  update vs the same critical update without the reduction knowledge.
"""

import dataclasses

from repro.core.ablation import (
    without_contexts,
    without_hierarchical_and_undirected,
    without_selectors,
    without_traits,
    without_variables,
)


@dataclasses.dataclass
class NecessityPair:
    """One Fig. 11 row."""

    key: str  # "A".."E"
    feature: str  # human name of the PS-PDG feature demonstrated
    fast_source: str
    slow_source: str
    projection: object  # the "PS-PDG w/o X" function

    def sources(self):
        return {"fast": self.fast_source, "slow": self.slow_source}


_PAIR_A_FAST = """
global data: int[64];
global hist: int[8];

func main() {
  pragma omp parallel_for
  for i in 0..64 {
    var b: int = data[i] % 8;
    pragma omp critical
    { hist[b] = hist[b] + 1; }
  }
  print(hist[0]);
}
"""

_PAIR_A_SLOW = _PAIR_A_FAST.replace("omp critical", "omp ordered")

_PAIR_B_FAST = """
global flag: int;

func main() {
  pragma omp parallel
  {
    pragma omp single
    { print(flag); }
  }
}
"""

_PAIR_B_SLOW = _PAIR_B_FAST.replace("omp single", "omp ordered")

_PAIR_C_FAST = """
global a: int[32];
global b: int[32];

func main() {
  for t in 0..4 {
    pragma omp parallel_for
    for j in 0..32 {
      a[j] = a[j] + b[j];
    }
  }
  print(a[0]);
}
"""

_PAIR_C_SLOW = _PAIR_C_FAST.replace("omp parallel_for", "omp ordered")

_PAIR_D_FAST = """
global a: int[64];

func main() {
  var value: int = 0;
  pragma omp parallel_for anyvalue(value)
  for i in 0..64 {
    value = a[i];
  }
  print(value);
}
"""

_PAIR_D_SLOW = _PAIR_D_FAST.replace("anyvalue(value)", "lastprivate(value)")

_PAIR_E_FAST = """
global a: int[64];

func main() {
  var total: int = 0;
  pragma omp parallel_for reduction(+: total)
  for i in 0..64 {
    pragma omp critical
    { total = total + a[i]; }
  }
  print(total);
}
"""

_PAIR_E_SLOW = _PAIR_E_FAST.replace(" reduction(+: total)", "")


PAIRS = [
    NecessityPair(
        "A",
        "hierarchical nodes + undirected edges",
        _PAIR_A_FAST,
        _PAIR_A_SLOW,
        without_hierarchical_and_undirected,
    ),
    NecessityPair(
        "B", "node traits", _PAIR_B_FAST, _PAIR_B_SLOW, without_traits
    ),
    NecessityPair(
        "C", "contexts", _PAIR_C_FAST, _PAIR_C_SLOW, without_contexts
    ),
    NecessityPair(
        "D",
        "data-selector directed edges",
        _PAIR_D_FAST,
        _PAIR_D_SLOW,
        without_selectors,
    ),
    NecessityPair(
        "E",
        "parallel semantic variables",
        _PAIR_E_FAST,
        _PAIR_E_SLOW,
        without_variables,
    ),
]


def build_pair_sessions(pair):
    """One :class:`repro.Session` per program of a pair (PS-PDG on demand)."""
    from repro.session import Session

    return {
        label: Session.from_source(
            source, name=f"necessity-{pair.key}-{label}"
        )
        for label, source in pair.sources().items()
    }


def build_pair_graphs(pair):
    """Compile both programs of a pair and build their PS-PDGs."""
    return {
        label: session.pspdg
        for label, session in build_pair_sessions(pair).items()
    }


def demonstrate(pair):
    """Run the necessity check for one pair.

    Returns ``(full_equal, reduced_equal)``; necessity holds when the full
    representations differ but the reduced ones coincide, i.e. the result
    is ``(False, True)``.
    """
    sessions = build_pair_sessions(pair)
    fast, slow = sessions["fast"], sessions["slow"]
    full_equal = fast.signature() == slow.signature()
    reduced_equal = fast.reduced_signature(
        pair.projection
    ) == slow.reduced_signature(pair.projection)
    return full_equal, reduced_equal
