"""Alias analysis: provenance, object identity, call summaries."""

from repro.analysis import AliasAnalysis, CONSOLE
from repro.frontend import compile_source
from repro.ir.instructions import Load, Store


def test_distinct_objects_never_alias():
    module = compile_source(
        "global a: int[4];\nglobal b: int[4];\n"
        "func main() { a[0] = 1; b[0] = 2; print(a[0]); }"
    )
    aa = AliasAnalysis(module)
    function = module.function("main")
    stores = [i for i in function.instructions() if isinstance(i, Store)]
    obj_a = aa.base_object(stores[0].pointer, function)
    obj_b = aa.base_object(stores[1].pointer, function)
    assert not aa.may_alias(obj_a, obj_b)
    assert obj_a != obj_b


def test_gep_chain_resolves_to_base(self=None):
    module = compile_source(
        "global m: int[3][3];\nfunc main() { m[1][2] = 5; print(m[1][2]); }"
    )
    aa = AliasAnalysis(module)
    function = module.function("main")
    store = next(i for i in function.instructions() if isinstance(i, Store))
    load = next(
        i
        for i in function.instructions()
        if isinstance(i, Load) and i.type.is_scalar()
    )
    assert aa.base_object(store.pointer, function) == aa.base_object(
        load.pointer, function
    )


def test_object_identity_stable_across_analysis_instances():
    module = compile_source("global g: int;\nfunc main() { g = 1; print(g); }")
    function = module.function("main")
    store = next(i for i in function.instructions() if isinstance(i, Store))
    obj1 = AliasAnalysis(module).base_object(store.pointer, function)
    obj2 = AliasAnalysis(module).base_object(store.pointer, function)
    assert obj1 == obj2
    assert hash(obj1) == hash(obj2)


def test_console_objects_compare_equal():
    from repro.analysis.alias import ConsoleObject

    assert ConsoleObject() == CONSOLE


def test_scalar_classification():
    module = compile_source(
        "global s: int;\nglobal a: int[2];\n"
        "func main() { s = 1; a[0] = 2; print(s); }"
    )
    aa = AliasAnalysis(module)
    assert aa.object_for_global(module.globals["s"]).is_scalar()
    assert not aa.object_for_global(module.globals["a"]).is_scalar()


class TestCallSummaries:
    def test_callee_effects_visible_at_call_site(self):
        module = compile_source(
            "global g: int;\n"
            "func bump() { g = g + 1; }\n"
            "func main() { bump(); print(g); }"
        )
        aa = AliasAnalysis(module)
        summary = aa.function_summary("bump")
        assert ("global", "g") in summary["writes"]
        assert ("global", "g") in summary["reads"]

    def test_argument_effects_translate_through_call(self):
        module = compile_source(
            "func fill(a: int[4]) { a[0] = 7; }\n"
            "func main() { var v: int[4]; fill(v); print(v[0]); }"
        )
        aa = AliasAnalysis(module)
        function = module.function("main")
        call = next(
            i for i in function.instructions() if i.opcode == "call"
        )
        reads, writes = aa.call_effects(call, function)
        names = {getattr(o, "display_name", "") for o in writes}
        assert "v" in names

    def test_recursive_summaries_converge(self):
        module = compile_source(
            "global acc: int;\n"
            "func down(n: int) {\n"
            "  acc = acc + n;\n"
            "  if (n > 0) { down(n - 1); }\n"
            "}\n"
            "func main() { down(3); print(acc); }"
        )
        aa = AliasAnalysis(module)
        summary = aa.function_summary("down")
        assert ("global", "acc") in summary["writes"]

    def test_print_summarized_as_console_write(self):
        module = compile_source(
            "func noisy() { print(1); }\nfunc main() { noisy(); }"
        )
        aa = AliasAnalysis(module)
        assert ("console",) in aa.function_summary("noisy")["writes"]
