"""Control dependence (Ferrante/Ottenstein/Warren)."""

from repro.analysis import (
    compute_control_dependence,
    controlling_branch_instructions,
)
from repro.frontend import compile_source


def deps_by_name(source):
    module = compile_source(source)
    function = module.function("main")
    deps = compute_control_dependence(function)
    return function, {
        block.name: sorted(b.name for b in sources)
        for block, sources in deps.items()
    }


def test_straightline_has_no_control_dependences():
    _, deps = deps_by_name("func main() { var x: int = 1; print(x); }")
    assert all(not sources for sources in deps.values())


def test_if_arms_depend_on_condition_block():
    function, deps = deps_by_name(
        "func main() { var x: int = 1;\n"
        "if (x > 0) { print(1); } else { print(2); } print(3); }"
    )
    assert deps["if.then"] == ["entry"]
    assert deps["if.else"] == ["entry"]
    # The merge block runs regardless: no control dependence.
    assert deps["if.end"] == []


def test_loop_body_depends_on_header():
    _, deps = deps_by_name("func main() { for i in 0..4 { print(i); } }")
    assert "for.header" in deps["for.body"]
    assert "for.header" in deps["for.latch"]


def test_loop_header_self_dependence():
    _, deps = deps_by_name("func main() { for i in 0..4 { print(i); } }")
    assert "for.header" in deps["for.header"]


def test_nested_if_chains_dependences():
    _, deps = deps_by_name(
        "func main() { var x: int = 1;\n"
        "if (x > 0) { if (x > 1) { print(1); } } }"
    )
    # Inner then-block is controlled by the inner branch, which lives in
    # the outer then-block.
    assert deps["if.then.1"] == ["if.then"]
    assert deps["if.then"] == ["entry"]


def test_instruction_level_sources_are_branches():
    module = compile_source(
        "func main() { var x: int = 1; if (x > 0) { print(1); } }"
    )
    function = module.function("main")
    controllers = controlling_branch_instructions(function)
    then_block = function.block("if.then")
    for inst in then_block.instructions:
        sources = controllers[inst]
        assert len(sources) == 1
        assert sources[0].opcode == "branch"
