"""Dependence tests: ZIV, strong SIV (with a brute-force oracle), trips."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import constant_trip_count, find_natural_loops
from repro.analysis import test_level as siv_test
from repro.analysis.subscripts import AffineExpr
from repro.frontend import compile_source


def loop_for(source):
    module = compile_source(source)
    return find_natural_loops(module.function("main"))[0]


SIMPLE = "func main() { for i in 0..10 { } }"


class TestTripCounts:
    def test_constant_trip_count(self):
        assert constant_trip_count(loop_for(SIMPLE)) == 10

    def test_trip_count_with_step(self):
        loop = loop_for("func main() { for i in 0..10 step 3 { } }")
        assert constant_trip_count(loop) == 4

    def test_empty_range(self):
        loop = loop_for("func main() { for i in 5..5 { } }")
        assert constant_trip_count(loop) == 0

    def test_unknown_trip_count(self):
        loop = loop_for(
            "func main() { var n: int = 3; for i in 0..n { } }"
        )
        assert constant_trip_count(loop) is None

    def test_while_loop_has_no_trip_count(self):
        loop = loop_for(
            "func main() { var x: int = 0; while (x < 5) { x = x + 1; } }"
        )
        assert constant_trip_count(loop) is None


class TestZIV:
    def test_equal_constants_conflict(self):
        loop = loop_for(SIMPLE)
        result = siv_test(AffineExpr.const(3), AffineExpr.const(3), loop, {})
        assert result.intra and result.carried_forward and result.exact

    def test_distinct_constants_never_conflict(self):
        loop = loop_for(SIMPLE)
        result = siv_test(AffineExpr.const(3), AffineExpr.const(4), loop, {})
        assert not result.intra
        assert not result.carried_forward
        assert not result.carried_backward


class TestStrongSIV:
    def _iv(self, loop):
        return loop.canonical.induction

    def test_same_subscript_intra_only(self):
        loop = loop_for(SIMPLE)
        iv = self._iv(loop)
        a = AffineExpr(0, {iv: 1})
        result = siv_test(a, a, loop, {})
        assert result.intra
        assert not result.carried_forward and not result.carried_backward

    def test_distance_one_is_carried_forward(self):
        loop = loop_for(SIMPLE)
        iv = self._iv(loop)
        write = AffineExpr(1, {iv: 1})  # a[i+1]
        read = AffineExpr(0, {iv: 1})  # a[i]
        result = siv_test(write, read, loop, {})
        assert result.carried_forward and not result.intra

    def test_distance_exceeding_range_excluded(self):
        loop = loop_for(SIMPLE)
        iv = self._iv(loop)
        write = AffineExpr(100, {iv: 1})
        read = AffineExpr(0, {iv: 1})
        result = siv_test(write, read, loop, {})
        assert not (result.intra or result.carried_forward
                    or result.carried_backward)

    def test_fractional_distance_excluded(self):
        loop = loop_for(SIMPLE)
        iv = self._iv(loop)
        write = AffineExpr(1, {iv: 2})  # 2i + 1 (odd)
        read = AffineExpr(0, {iv: 2})  # 2i (even)
        result = siv_test(write, read, loop, {})
        assert not (result.intra or result.carried_forward
                    or result.carried_backward)

    def test_non_affine_is_conservative(self):
        loop = loop_for(SIMPLE)
        result = siv_test(None, AffineExpr.const(0), loop, {})
        assert result.intra and result.carried_forward
        assert not result.exact

    @given(
        coeff=st.integers(1, 4),
        c1=st.integers(-8, 8),
        c2=st.integers(-8, 8),
    )
    @settings(max_examples=80, deadline=None)
    def test_strong_siv_matches_bruteforce(self, coeff, c1, c2):
        loop = loop_for(SIMPLE)  # iv range 0..10 step 1
        iv = self._iv(loop)
        f = AffineExpr(c1, {iv: coeff})
        g = AffineExpr(c2, {iv: coeff})
        result = siv_test(f, g, loop, {})

        intra = any(
            coeff * t + c1 == coeff * t + c2 for t in range(10)
        )
        forward = any(
            coeff * t1 + c1 == coeff * t2 + c2
            for t1 in range(10)
            for t2 in range(t1 + 1, 10)
        )
        backward = any(
            coeff * t1 + c1 == coeff * t2 + c2
            for t1 in range(10)
            for t2 in range(0, t1)
        )
        # The implemented test may be conservative but must never claim
        # "no dependence" when one exists.
        assert result.intra or not intra
        assert result.carried_forward or not forward
        assert result.carried_backward or not backward
        if result.exact:
            assert result.intra == intra
            assert result.carried_forward == forward
            assert result.carried_backward == backward


class TestInnerVariantLevels:
    def test_disjoint_tiles_not_carried(self):
        # offset = 16*plane + j with j in 0..16: distinct planes touch
        # distinct tiles -> no carried dependence at the plane loop.
        module = compile_source(
            "global a: int[256];\n"
            "func main() { for p in 0..16 { for j in 0..16 {"
            " a[p * 16 + j] = 1; } } }"
        )
        loops = find_natural_loops(module.function("main"))
        outer = next(l for l in loops if l.parent is None)
        inner = next(l for l in loops if l.parent is not None)
        piv = outer.canonical.induction
        jiv = inner.canonical.induction
        offset = AffineExpr(0, {piv: 16, jiv: 1})
        result = siv_test(offset, offset, outer, {jiv: inner})
        assert result.intra
        assert not result.carried_forward

    def test_overlapping_tiles_carried(self):
        # offset = 8*plane + j with j in 0..16: tiles overlap by 8.
        module = compile_source(
            "global a: int[256];\n"
            "func main() { for p in 0..16 { for j in 0..16 {"
            " a[p * 8 + j] = 1; } } }"
        )
        loops = find_natural_loops(module.function("main"))
        outer = next(l for l in loops if l.parent is None)
        inner = next(l for l in loops if l.parent is not None)
        piv = outer.canonical.induction
        jiv = inner.canonical.induction
        offset = AffineExpr(0, {piv: 8, jiv: 1})
        result = siv_test(offset, offset, outer, {jiv: inner})
        assert result.carried_forward
