"""Dominator/postdominator trees, including a property check vs a naive
fixed-point dominator computation on random CFGs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    compute_dominator_tree,
    compute_postdominator_tree,
    successors_map,
)
from repro.frontend import compile_source
from repro.ir import Function, IRBuilder


def diamond_function():
    """entry -> (left | right) -> merge -> exit"""
    function = Function("f")
    entry = function.create_block("entry")
    left = function.create_block("left")
    right = function.create_block("right")
    merge = function.create_block("merge")
    builder = IRBuilder(entry)
    cond = builder.cmp("lt", builder.int(1), builder.int(2))
    builder.branch(cond, left, right)
    IRBuilder(left).jump(merge)
    IRBuilder(right).jump(merge)
    IRBuilder(merge).ret()
    return function, entry, left, right, merge


class TestDominators:
    def test_entry_dominates_all(self):
        function, entry, left, right, merge = diamond_function()
        tree = compute_dominator_tree(function)
        for block in (left, right, merge):
            assert tree.dominates(entry, block)

    def test_branches_do_not_dominate_merge(self):
        function, entry, left, right, merge = diamond_function()
        tree = compute_dominator_tree(function)
        assert not tree.dominates(left, merge)
        assert not tree.dominates(right, merge)
        assert tree.idom[merge] is entry

    def test_dominance_is_reflexive(self):
        function, entry, *_ = diamond_function()
        tree = compute_dominator_tree(function)
        assert tree.dominates(entry, entry)

    def test_strict_dominance_excludes_self(self):
        function, entry, *_ = diamond_function()
        tree = compute_dominator_tree(function)
        assert not tree.strictly_dominates(entry, entry)

    def test_loop_header_dominates_body(self):
        module = compile_source("func main() { for i in 0..4 { print(i); } }")
        function = module.function("main")
        tree = compute_dominator_tree(function)
        header = function.block("for.header")
        body = function.block("for.body")
        latch = function.block("for.latch")
        assert tree.dominates(header, body)
        assert tree.dominates(header, latch)

    def test_dominators_of_chain(self):
        function, entry, left, right, merge = diamond_function()
        tree = compute_dominator_tree(function)
        chain = tree.dominators_of(merge)
        assert chain == [merge, entry]


class TestPostdominators:
    def test_merge_postdominates_branches(self):
        function, entry, left, right, merge = diamond_function()
        tree, _exit = compute_postdominator_tree(function)
        assert tree.dominates(merge, entry)
        assert tree.dominates(merge, left)

    def test_branch_arms_do_not_postdominate_entry(self):
        function, entry, left, right, merge = diamond_function()
        tree, _exit = compute_postdominator_tree(function)
        assert not tree.dominates(left, entry)

    def test_virtual_exit_is_root(self):
        function, entry, *_ = diamond_function()
        tree, exit_node = compute_postdominator_tree(function)
        assert tree.root is exit_node


def _naive_dominators(entry, succs):
    """Textbook O(n^2) iterative dominator sets, as the oracle."""
    nodes = list(succs)
    preds = {n: [] for n in nodes}
    for n in nodes:
        for s in succs[n]:
            preds[s].append(n)
    dom = {n: set(nodes) for n in nodes}
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for n in nodes:
            if n is entry:
                continue
            incoming = [dom[p] for p in preds[n]]
            new = set.intersection(*incoming) | {n} if incoming else {n}
            if new != dom[n]:
                dom[n] = new
                changed = True
    return dom


@st.composite
def random_cfg(draw):
    """A random connected CFG as a successor map over int nodes."""
    n = draw(st.integers(min_value=2, max_value=10))
    succs = {i: [] for i in range(n)}
    # Spanning structure: each node i>0 reachable from some j<i.
    for i in range(1, n):
        j = draw(st.integers(min_value=0, max_value=i - 1))
        succs[j].append(i)
    # Extra random edges (including back edges).
    extra = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra):
        a = draw(st.integers(min_value=0, max_value=n - 1))
        b = draw(st.integers(min_value=0, max_value=n - 1))
        if b not in succs[a]:
            succs[a].append(b)
    return succs


class TestAgainstNaiveOracle:
    @given(random_cfg())
    @settings(max_examples=60, deadline=None)
    def test_idom_consistent_with_naive_dominator_sets(self, succs):
        from repro.analysis.dominators import _compute_idom

        idom = _compute_idom(0, succs)
        naive = _naive_dominators(0, succs)
        reachable = set(idom)
        for node in reachable:
            if node == 0:
                continue
            # The immediate dominator must be the unique closest strict
            # dominator: a member of the naive dominator set.
            assert idom[node] in naive[node]
            # And every strict dominator of the node must dominate idom.
            for strict_dom in naive[node] - {node}:
                assert strict_dom in naive[idom[node]] | {idom[node]}
