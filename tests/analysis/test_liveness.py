"""Live-out object detection relative to loops."""

from repro.analysis import (
    blocks_after_loop,
    find_natural_loops,
    live_out_objects,
    objects_accessed_in_loop,
)
from repro.frontend import compile_source


def analyzed(source):
    module = compile_source(source)
    function = module.function("main")
    loop = find_natural_loops(function)[0]
    return module, function, loop


def test_scalar_read_after_loop_is_live_out():
    module, function, loop = analyzed(
        "func main() { var s: int = 0;\n"
        "for i in 0..4 { s = s + i; } print(s); }"
    )
    names = {o.display_name for o in live_out_objects(function, module, loop)}
    assert "s" in names


def test_scalar_unused_after_loop_is_dead():
    module, function, loop = analyzed(
        "func main() { var s: int = 0;\n"
        "for i in 0..4 { s = s + i; } print(7); }"
    )
    names = {o.display_name for o in live_out_objects(function, module, loop)}
    assert "s" not in names


def test_array_read_after_loop_is_live_out():
    module, function, loop = analyzed(
        "global a: int[4];\n"
        "func main() { for i in 0..4 { a[i] = i; } print(a[2]); }"
    )
    names = {o.display_name for o in live_out_objects(function, module, loop)}
    assert "@a" in names


def test_blocks_after_loop_exclude_loop_blocks():
    module, function, loop = analyzed(
        "func main() { for i in 0..4 { } print(1); }"
    )
    after = blocks_after_loop(function, loop)
    assert all(b not in loop.blocks for b in after)
    assert after


def test_objects_accessed_in_loop_partitions_reads_writes():
    module, function, loop = analyzed(
        "global a: int[4];\nglobal b: int[4];\n"
        "func main() { for i in 0..4 { a[i] = b[i]; } }"
    )
    reads, writes = objects_accessed_in_loop(function, module, loop)
    read_names = {o.display_name for o in reads}
    write_names = {o.display_name for o in writes}
    assert "@b" in read_names
    assert "@a" in write_names


def test_liveout_through_later_loop():
    module, function, loop = analyzed(
        "global a: int[4];\n"
        "func main() { for i in 0..4 { a[i] = i; }\n"
        "for j in 0..4 { print(a[j]); } }"
    )
    names = {o.display_name for o in live_out_objects(function, module, loop)}
    assert "@a" in names
