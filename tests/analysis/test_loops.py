"""Natural loop detection and the nesting forest."""

from repro.analysis import (
    common_loops,
    enclosing_loops,
    find_natural_loops,
    loop_of_block,
)
from repro.frontend import compile_source


def loops_of(source):
    module = compile_source(source)
    function = module.function("main")
    return function, find_natural_loops(function)


def test_single_loop_detected():
    function, loops = loops_of("func main() { for i in 0..4 { } }")
    assert len(loops) == 1
    assert loops[0].header.name == "for.header"
    assert loops[0].canonical is not None


def test_while_loop_has_no_canonical_metadata():
    function, loops = loops_of(
        "func main() { var x: int = 0;\n"
        "while (x < 5) { x = x + 1; } }"
    )
    assert len(loops) == 1
    assert loops[0].canonical is None


def test_nesting_forest():
    function, loops = loops_of(
        "func main() { for i in 0..3 { for j in 0..3 { } } for k in 0..3 { } }"
    )
    assert len(loops) == 3
    tops = [loop for loop in loops if loop.parent is None]
    assert len(tops) == 2
    inner = [loop for loop in loops if loop.parent is not None]
    assert len(inner) == 1
    assert inner[0].parent in tops
    assert inner[0].depth == 1


def test_loop_blocks_contain_body_and_latch():
    function, loops = loops_of("func main() { for i in 0..4 { print(i); } }")
    names = {b.name for b in loops[0].blocks}
    assert {"for.header", "for.body", "for.latch"} <= names
    assert "for.exit" not in names


def test_exit_and_back_edges():
    function, loops = loops_of("func main() { for i in 0..4 { } }")
    loop = loops[0]
    assert [(f.name, t.name) for f, t in loop.back_edges()] == [
        ("for.latch", "for.header")
    ]
    exits = loop.exit_edges()
    assert all(target not in loop.blocks for _, target in exits)


def test_loop_of_block_returns_innermost():
    function, loops = loops_of(
        "func main() { for i in 0..3 { for j in 0..3 { print(j); } } }"
    )
    inner_body = function.block("for.body.1")
    innermost = loop_of_block(loops, inner_body)
    assert innermost.header.name == "for.header.1"


def test_enclosing_and_common_loops():
    function, loops = loops_of(
        "func main() { for i in 0..3 { print(i); for j in 0..3 { print(j); } } }"
    )
    outer_print = next(
        i for i in function.block("for.body").instructions
        if i.opcode == "print"
    )
    inner_print = next(
        i for i in function.block("for.body.1").instructions
        if i.opcode == "print"
    )
    assert len(enclosing_loops(loops, outer_print)) == 1
    assert len(enclosing_loops(loops, inner_print)) == 2
    commons = common_loops(loops, outer_print, inner_print)
    assert len(commons) == 1
    assert commons[0].header.name == "for.header"


def test_loop_equality_by_header():
    function, loops_a = loops_of("func main() { for i in 0..4 { } }")
    loops_b = find_natural_loops(function)
    assert loops_a[0] == loops_b[0]
    assert hash(loops_a[0]) == hash(loops_b[0])


def test_descendants():
    function, loops = loops_of(
        "func main() { for i in 0..3 { for j in 0..3 { for k in 0..3 { } } } }"
    )
    top = next(loop for loop in loops if loop.parent is None)
    assert len(top.descendants()) == 2
