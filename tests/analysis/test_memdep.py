"""Memory dependence analysis over whole functions."""

from repro.analysis import compute_memory_dependences, find_natural_loops
from repro.frontend import compile_source


def deps_for(source):
    module = compile_source(source)
    function = module.function("main")
    deps = compute_memory_dependences(function, module)
    loops = find_natural_loops(function)
    return function, deps, loops


def named(deps, kind=None, display=None):
    out = []
    for d in deps:
        if kind is not None and d.kind != kind:
            continue
        name = getattr(d.obj, "display_name", "")
        if display is not None and name != display:
            continue
        out.append(d)
    return out


class TestScalars:
    def test_reduction_scalar_has_carried_raw_war_waw(self):
        _, deps, loops = deps_for(
            "func main() { var s: int = 0;\n"
            "for i in 0..4 { s = s + i; } print(s); }"
        )
        loop = loops[0]
        kinds = {
            d.kind
            for d in named(deps, display="s")
            if d.is_loop_carried_at(loop)
        }
        assert kinds == {"RAW", "WAR", "WAW"}

    def test_liveout_raw_reaches_print(self):
        _, deps, _ = deps_for(
            "func main() { var s: int = 0;\n"
            "for i in 0..4 { s = s + i; } print(s); }"
        )
        raws = named(deps, kind="RAW", display="s")
        assert any(d.loop_independent for d in raws)


class TestArrays:
    def test_affine_same_index_not_carried(self):
        _, deps, loops = deps_for(
            "global a: int[8];\n"
            "func main() { for i in 0..8 { a[i] = a[i] + 1; } }"
        )
        loop = loops[0]
        carried = [
            d for d in named(deps, display="@a") if d.is_loop_carried_at(loop)
        ]
        assert carried == []

    def test_shifted_index_carried_in_one_direction(self):
        _, deps, loops = deps_for(
            "global a: int[10];\n"
            "func main() { for i in 1..9 { a[i] = a[i - 1] + 1; } }"
        )
        loop = loops[0]
        carried = [
            d for d in named(deps, kind="RAW", display="@a")
            if d.is_loop_carried_at(loop)
        ]
        assert carried, "recurrence must be loop-carried"
        # Forward direction only: the write feeds the *next* iteration.
        for d in carried:
            assert d.source.opcode == "store"

    def test_distinct_arrays_have_no_cross_dependences(self):
        _, deps, _ = deps_for(
            "global a: int[4];\nglobal b: int[4];\n"
            "func main() { for i in 0..4 { a[i] = 1; b[i] = 2; } }"
        )
        for d in deps:
            src_obj = getattr(d.obj, "display_name", "")
            assert src_obj in ("@a", "@b", "i")

    def test_indirect_index_is_conservative(self):
        _, deps, loops = deps_for(
            "global a: int[8];\nglobal k: int[8];\n"
            "func main() { for i in 0..8 { a[k[i]] = a[k[i]] + 1; } }"
        )
        loop = loops[0]
        carried = [
            d for d in named(deps, display="@a") if d.is_loop_carried_at(loop)
        ]
        assert carried, "indirect updates must be assumed carried"


class TestOrdering:
    def test_sequential_loops_linked_by_intra_dependence(self):
        _, deps, _ = deps_for(
            "global a: int[4];\n"
            "func main() { for i in 0..4 { a[i] = 1; }\n"
            "for j in 0..4 { a[j] = a[j] + 1; } }"
        )
        cross = [
            d
            for d in named(deps, display="@a")
            if d.loop_independent
            and d.source.parent.name != d.destination.parent.name
        ]
        assert cross, "loop-to-loop ordering must be represented"

    def test_prints_serialize_through_console(self):
        _, deps, _ = deps_for("func main() { print(1); print(2); }")
        console = [d for d in deps if d.obj.display_name == "<console>"]
        assert any(d.kind == "WAW" for d in console)

    def test_call_dependences_via_summary(self):
        module = compile_source(
            "global g: int;\n"
            "func bump() { g = g + 1; }\n"
            "func main() { g = 1; bump(); print(g); }"
        )
        function = module.function("main")
        deps = compute_memory_dependences(function, module)
        call_deps = [
            d
            for d in deps
            if d.source.opcode == "call" or d.destination.opcode == "call"
        ]
        assert any(d.kind == "RAW" for d in call_deps)
