"""Scalar reduction recognition and sequential privatization."""

from repro.analysis import (
    AliasAnalysis,
    find_natural_loops,
    find_scalar_reductions,
)
from repro.analysis.privatization import sequentially_privatizable_objects
from repro.frontend import compile_source


def analyze(source):
    module = compile_source(source)
    function = module.function("main")
    loop = find_natural_loops(function)[0]
    reductions = find_scalar_reductions(function, module, loop)
    privatizable = sequentially_privatizable_objects(function, module, loop)
    return reductions, privatizable


class TestReductions:
    def test_sum_recognized(self):
        reductions, _ = analyze(
            "func main() { var s: int = 0;\n"
            "for i in 0..4 { s = s + i; } print(s); }"
        )
        assert len(reductions) == 1
        assert reductions[0].op == "add"

    def test_product_recognized(self):
        reductions, _ = analyze(
            "func main() { var p: int = 1;\n"
            "for i in 1..5 { p = p * i; } print(p); }"
        )
        assert reductions and reductions[0].op == "mul"

    def test_max_recognized(self):
        reductions, _ = analyze(
            "global a: int[4];\n"
            "func main() { var m: int = 0;\n"
            "for i in 0..4 { m = max(m, a[i]); } print(m); }"
        )
        assert reductions and reductions[0].op == "max"

    def test_conditional_update_recognized(self):
        reductions, _ = analyze(
            "global a: int[4];\n"
            "func main() { var s: int = 0;\n"
            "for i in 0..4 { if (a[i] > 0) { s = s + a[i]; } } print(s); }"
        )
        assert len(reductions) == 1

    def test_subtraction_not_recognized(self):
        reductions, _ = analyze(
            "func main() { var s: int = 0;\n"
            "for i in 0..4 { s = s - i; } print(s); }"
        )
        assert reductions == []

    def test_extra_use_defeats_recognition(self):
        reductions, _ = analyze(
            "func main() { var s: int = 0;\n"
            "for i in 0..4 { s = s + i; print(s); } }"
        )
        assert reductions == []

    def test_self_dependent_operand_rejected(self):
        reductions, _ = analyze(
            "func main() { var s: int = 1;\n"
            "for i in 0..4 { s = s + s; } print(s); }"
        )
        assert reductions == []

    def test_identity_values(self):
        reductions, _ = analyze(
            "func main() { var s: int = 0;\n"
            "for i in 0..4 { s = s + i; } print(s); }"
        )
        assert reductions[0].identity_value("int") == 0


class TestPrivatization:
    def test_defined_before_use_and_dead_after(self):
        _, privatizable = analyze(
            "global a: int[4];\n"
            "func main() { for i in 0..4 {\n"
            "  var t: int = a[i] * 2;\n"
            "  a[i] = t + 1;\n"
            "} }"
        )
        names = {o.display_name for o in privatizable}
        assert "t" in names

    def test_liveout_scalar_not_privatizable(self):
        _, privatizable = analyze(
            "func main() { var t: int = 0;\n"
            "for i in 0..4 { t = i; } print(t); }"
        )
        names = {o.display_name for o in privatizable}
        assert "t" not in names

    def test_use_before_def_not_privatizable(self):
        _, privatizable = analyze(
            "func main() { var t: int = 0;\n"
            "for i in 0..4 { var x: int = t + 1; t = x; } }"
        )
        names = {o.display_name for o in privatizable}
        assert "t" not in names

    def test_def_dominating_use_across_blocks(self):
        _, privatizable = analyze(
            "global a: int[8];\n"
            "func main() { for i in 0..8 {\n"
            "  var t: int = a[i];\n"
            "  if (t > 2) { a[i] = t * 2; }\n"
            "} }"
        )
        names = {o.display_name for o in privatizable}
        assert "t" in names
