"""Tarjan SCC, checked against networkx on random graphs."""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import condensation, strongly_connected_components


def test_straight_line_is_singletons():
    succs = {1: [2], 2: [3], 3: []}
    components = strongly_connected_components([1, 2, 3], succs)
    assert [sorted(c) for c in components] == [[3], [2], [1]]


def test_cycle_collapses():
    succs = {1: [2], 2: [3], 3: [1]}
    components = strongly_connected_components([1, 2, 3], succs)
    assert len(components) == 1
    assert sorted(components[0]) == [1, 2, 3]


def test_two_sccs_with_bridge():
    succs = {1: [2], 2: [1, 3], 3: [4], 4: [3]}
    components = strongly_connected_components([1, 2, 3, 4], succs)
    assert sorted(sorted(c) for c in components) == [[1, 2], [3, 4]]


def test_reverse_topological_order():
    succs = {"a": ["b"], "b": ["c"], "c": []}
    components = strongly_connected_components(["a", "b", "c"], succs)
    # Tarjan emits sinks first.
    assert components == [["c"], ["b"], ["a"]]


def test_self_loop_is_its_own_scc():
    succs = {1: [1, 2], 2: []}
    components = strongly_connected_components([1, 2], succs)
    assert [sorted(c) for c in components] == [[2], [1]]


def test_condensation_edges():
    succs = {1: [2], 2: [1, 3], 3: []}
    components, component_of, edges = condensation([1, 2, 3], succs)
    assert component_of[1] == component_of[2]
    assert component_of[3] != component_of[1]
    assert (component_of[1], component_of[3]) in edges
    # No self edges in the condensation.
    assert all(a != b for a, b in edges)


@st.composite
def random_digraph(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    density = draw(st.floats(min_value=0.0, max_value=0.5))
    edges = []
    for a in range(n):
        for b in range(n):
            if a != b and draw(st.booleans()) and density > 0.1:
                edges.append((a, b))
    succs = {i: [] for i in range(n)}
    for a, b in edges:
        succs[a].append(b)
    return succs


@given(random_digraph())
@settings(max_examples=60, deadline=None)
def test_matches_networkx(succs):
    nodes = list(succs)
    ours = strongly_connected_components(nodes, succs)
    graph = nx.DiGraph()
    graph.add_nodes_from(nodes)
    for a, targets in succs.items():
        for b in targets:
            graph.add_edge(a, b)
    theirs = {frozenset(c) for c in nx.strongly_connected_components(graph)}
    assert {frozenset(c) for c in ours} == theirs
    # Every node appears exactly once.
    flat = [n for c in ours for n in c]
    assert sorted(flat) == sorted(nodes)
