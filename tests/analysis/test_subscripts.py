"""Affine subscript extraction and AffineExpr algebra."""

from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    AffineExpr,
    affine_offset,
    find_natural_loops,
    induction_alloca_map,
)
from repro.frontend import compile_source
from repro.ir.instructions import Store


def offsets_of_stores(source):
    module = compile_source(source)
    function = module.function("main")
    loops = find_natural_loops(function)
    ivs = set(induction_alloca_map(loops))
    return [
        affine_offset(inst.pointer, ivs)
        for inst in function.instructions()
        if isinstance(inst, Store) and inst.pointer.opcode == "gep"
    ]


class TestAffineExtraction:
    def test_direct_iv_index(self):
        (offset,) = offsets_of_stores(
            "global a: int[8];\nfunc main() { for i in 0..8 { a[i] = 1; } }"
        )
        assert offset is not None
        assert offset.constant == 0
        assert list(offset.coefficients.values()) == [1]

    def test_linear_expression_index(self):
        (offset,) = offsets_of_stores(
            "global a: int[64];\n"
            "func main() { for i in 0..8 { a[i * 4 + 3] = 1; } }"
        )
        assert offset.constant == 3
        assert list(offset.coefficients.values()) == [4]

    def test_two_level_index_combines_ivs(self):
        (offset,) = offsets_of_stores(
            "global a: int[64];\n"
            "func main() { for i in 0..8 { for j in 0..8 {"
            " a[i * 8 + j] = 1; } } }"
        )
        assert sorted(offset.coefficients.values()) == [1, 8]

    def test_multidim_gep_strides(self):
        (offset,) = offsets_of_stores(
            "global m: int[8][8];\n"
            "func main() { for i in 0..8 { for j in 0..8 {"
            " m[i][j] = 1; } } }"
        )
        assert sorted(offset.coefficients.values()) == [1, 8]

    def test_indirect_index_is_not_affine(self):
        (offset,) = offsets_of_stores(
            "global a: int[8];\nglobal k: int[8];\n"
            "func main() { for i in 0..8 { a[k[i]] = 1; } }"
        )
        assert offset is None

    def test_modulo_is_not_affine(self):
        (offset,) = offsets_of_stores(
            "global a: int[8];\n"
            "func main() { for i in 0..64 { a[i % 8] = 1; } }"
        )
        assert offset is None

    def test_subtraction_and_negation(self):
        (offset,) = offsets_of_stores(
            "global a: int[16];\n"
            "func main() { for i in 0..8 { a[15 - i] = 1; } }"
        )
        assert offset.constant == 15
        assert list(offset.coefficients.values()) == [-1]


class TestAffineAlgebra:
    @given(st.integers(-50, 50), st.integers(-50, 50))
    def test_const_addition(self, a, b):
        expr = AffineExpr.const(a).add(AffineExpr.const(b))
        assert expr.constant == a + b
        assert expr.is_constant()

    @given(st.integers(-50, 50), st.integers(-10, 10))
    def test_scaling_distributes(self, c, k):
        class FakeVar:
            var_name = "v"
            uid = 0

        var = FakeVar()
        expr = AffineExpr(c, {var: 3}).scale(k)
        if k == 0:
            assert expr.is_constant() and expr.constant == 0
        else:
            assert expr.constant == c * k
            assert expr.coefficient(var) == 3 * k

    def test_cancellation_removes_zero_terms(self):
        class FakeVar:
            var_name = "v"
            uid = 0

        var = FakeVar()
        expr = AffineExpr(0, {var: 2}).add(AffineExpr(0, {var: -2}))
        assert expr.is_constant()

    def test_negate_roundtrip(self):
        class FakeVar:
            var_name = "v"
            uid = 0

        var = FakeVar()
        expr = AffineExpr(7, {var: 3})
        assert expr.negate().negate().constant == expr.constant
        assert expr.negate().coefficient(var) == -3
