"""Unit tests for the region-body compiler (repro.codegen).

Lowering fidelity is mostly covered by the differential conformance
suite (tests/integration/test_compiled_conformance.py); these tests pin
the package's own contracts — cache behavior, fallback-never-fail, the
Bailout protocol, and the VERIFY_COMPILED oracle's divergence checks.
"""

import gc

import pytest

from repro.analysis.loops import find_natural_loops
from repro.codegen import cache as codegen_cache
from repro.codegen import lower, runtime as codegen_runtime
from repro.codegen.lower import CompiledChunk, Unsupported, compile_chunk
from repro.codegen.runtime import Bailout, execute_chunk
from repro.frontend import compile_source
from repro.util.errors import EmulationError

SIMPLE = """
global a: int[32];

func main() {
  pragma omp parallel_for
  for i in 0..32 {
    a[i] = i * 2 + 1;
  }
  print(a[31]);
}
"""

MATHY = """
global x: float[16];
global s: float;

func main() {
  pragma omp parallel_for reduction(+: s)
  for i in 0..16 {
    x[i] = sqrt(float(i)) + sin(float(i)) * 0.5;
    s = s + x[i];
  }
  print(s);
}
"""

NESTED = """
global m: int[8];

func main() {
  pragma omp parallel_for
  for i in 0..8 {
    var acc: int = 0;
    for j in 0..4 {
      acc = acc + i * j;
    }
    m[i] = acc;
  }
  print(m[7]);
}
"""


def _loop(source, index=0):
    module = compile_source(source)
    function = module.function("main")
    loops = [
        lp for lp in find_natural_loops(function) if lp.canonical
    ]
    return module, loops[index]


# -- lowering --------------------------------------------------------------------


def test_compile_chunk_produces_both_variants():
    _module, loop = _loop(SIMPLE)
    logged = compile_chunk(loop, logged=True)
    plain = compile_chunk(loop, logged=False)
    assert logged.logged and not plain.logged
    assert "_log = interp.write_log" in logged.source
    assert "_log = interp.write_log" not in plain.source
    assert logged.label == f"main:{loop.header.name}"


def test_lowered_source_pins_interpreter_semantics():
    _module, loop = _loop(SIMPLE)
    source = compile_chunk(loop, logged=True).source
    # Step parity with run_chunk (one step per IR instruction) and the
    # exact interpreter error strings.
    assert "parallel worker exceeded max_steps" in source
    assert "out of bounds for" in source
    assert "_iv[0] = _i" in source


def test_nested_sequential_loop_lowers_to_state_machine():
    _module, loop = _loop(NESTED)  # outer parallel loop, inner `for j`
    entry = compile_chunk(loop, logged=True)
    assert "while True:" in entry.source
    assert "_b = " in entry.source


def test_float_helpers_route_through_guarded_math():
    _module, loop = _loop(MATHY)
    source = compile_chunk(loop, logged=True).source
    assert "_u_sqrt(" in source
    assert "_u_sin(" in source


def test_non_canonical_loop_is_unsupported():
    _module, loop = _loop(SIMPLE)
    loop.canonical = None
    with pytest.raises(Unsupported):
        compile_chunk(loop, logged=True)


def test_nonfinite_constant_refused():
    with pytest.raises(Unsupported):
        lower._literal(float("inf"))
    with pytest.raises(Unsupported):
        lower._literal(float("nan"))
    assert lower._literal(1.5) == "1.5"
    assert lower._literal(True) == "True"


# -- the cache -------------------------------------------------------------------


def test_cache_hits_and_stats():
    module, loop = _loop(SIMPLE)
    first = codegen_cache.compiled_chunk(module, loop, logged=True)
    again = codegen_cache.compiled_chunk(module, loop, logged=True)
    assert first is again
    stats = codegen_cache.stats()
    assert stats["compiles"] == 1
    assert stats["hits"] == 1
    assert stats["seconds"] > 0


def test_cache_key_separates_store_variants():
    module, loop = _loop(SIMPLE)
    logged = codegen_cache.compiled_chunk(module, loop, logged=True)
    plain = codegen_cache.compiled_chunk(module, loop, logged=False)
    assert logged is not plain
    assert codegen_cache.stats()["compiles"] == 2


def test_cache_failure_memoizes_fallback(monkeypatch):
    module, loop = _loop(SIMPLE)

    def refuse(loop, logged, module_key=None):
        raise Unsupported("test refusal")

    monkeypatch.setattr(codegen_cache, "compile_chunk", refuse)
    assert codegen_cache.compiled_chunk(module, loop, True) is None
    assert codegen_cache.compiled_chunk(module, loop, True) is None
    stats = codegen_cache.stats()
    assert stats["fallbacks"] == 1  # second call was a (None) cache hit
    assert stats["hits"] == 1


def test_cache_never_raises_on_codegen_bug(monkeypatch):
    module, loop = _loop(SIMPLE)

    def explode(loop, logged, module_key=None):
        raise RuntimeError("codegen bug")

    monkeypatch.setattr(codegen_cache, "compile_chunk", explode)
    assert codegen_cache.compiled_chunk(module, loop, True) is None
    assert codegen_cache.stats()["fallbacks"] == 1


def test_cache_entries_die_with_their_module():
    module, loop = _loop(SIMPLE)
    codegen_cache.compiled_chunk(module, loop, logged=True)
    assert len(codegen_cache._FN_CACHE) == 1
    del module, loop
    gc.collect()
    # Weak keying: a re-decoded module (new object, same content hash)
    # can never be served another module's entries.
    assert len(codegen_cache._FN_CACHE) == 0


def test_reset_clears_entries_and_counters():
    module, loop = _loop(SIMPLE)
    codegen_cache.compiled_chunk(module, loop, logged=True)
    codegen_cache.reset()
    assert codegen_cache.stats() == {
        "compiles": 0, "hits": 0, "source_hits": 0, "fallbacks": 0,
        "seconds": 0.0,
    }
    assert len(codegen_cache._FN_CACHE) == 0


# -- chunk execution -------------------------------------------------------------


class _Shim:
    """Minimal stand-in for _WorkerInterpreter in execute_chunk tests."""

    def __init__(self):
        self.ran_interpreted = 0
        self.write_log = {}
        self.output = []
        self.steps = 0
        self.max_steps = 10**9

    def run_chunk(self, loop, frame, iterations, locks, outer=None):
        self.ran_interpreted += 1


def _entry(fn):
    return CompiledChunk(
        fn=fn, source="", function="main", header="h", logged=True
    )


def test_execute_chunk_without_entry_interprets():
    shim = _Shim()
    mode = execute_chunk(None, shim, "loop", "frame", [1], None)
    assert mode == "interpreted"
    assert shim.ran_interpreted == 1


def test_execute_chunk_runs_compiled_body():
    shim = _Shim()
    hits = []
    entry = _entry(lambda interp, frame, iters: hits.append(iters))
    mode = execute_chunk(entry, shim, "loop", "frame", [1, 2], None)
    assert mode == "compiled"
    assert hits == [[1, 2]]
    assert shim.ran_interpreted == 0


def test_execute_chunk_bailout_falls_back():
    shim = _Shim()

    def bail(interp, frame, iters):
        raise Bailout()

    mode = execute_chunk(_entry(bail), shim, "loop", "frame", [1], None)
    assert mode == "interpreted"
    assert shim.ran_interpreted == 1


# -- the VERIFY_COMPILED oracle --------------------------------------------------


class _VerifyShim(_Shim):
    """Shim whose interpreted run writes `expected` into `storage`."""

    def __init__(self, storage, expected):
        super().__init__()
        self.storage = storage
        self.expected = expected

    def run_chunk(self, loop, frame, iterations, locks, outer=None):
        self.ran_interpreted += 1
        log = self.write_log
        key = (id(self.storage), 0)
        if key not in log:
            log[key] = (self.storage, self.storage[0])
        self.storage[0] = self.expected
        self.steps += 1


def _compiled_writer(storage, value):
    def fn(interp, frame, iterations):
        log = interp.write_log
        key = (id(storage), 0)
        if key not in log:
            log[key] = (storage, storage[0])
        storage[0] = value
        interp.steps += 1

    return _entry(fn)


def test_verify_agreement_keeps_interpreted_effects():
    storage = [0]
    shim = _VerifyShim(storage, expected=7)
    entry = _compiled_writer(storage, 7)
    mode = execute_chunk(entry, shim, "loop", "frame", [1], None,
                         verify=True)
    assert mode == "compiled"
    assert shim.ran_interpreted == 1  # oracle re-ran interpreted
    assert storage[0] == 7
    # The real log carries the write (record_write semantics).
    assert shim.write_log == {(id(storage), 0): (storage, 0)}


def test_verify_detects_wrong_value():
    storage = [0]
    shim = _VerifyShim(storage, expected=7)
    entry = _compiled_writer(storage, 8)  # compiled writes the wrong value
    with pytest.raises(EmulationError, match="divergence"):
        execute_chunk(entry, shim, "loop", "frame", [1], None,
                      verify=True)
    # Interpreted state is authoritative and stays applied.
    assert storage[0] == 7


def test_verify_detects_missing_write():
    storage = [0]
    shim = _VerifyShim(storage, expected=7)
    entry = _entry(lambda interp, frame, iters: None)  # writes nothing
    with pytest.raises(EmulationError, match="write logs differ"):
        execute_chunk(entry, shim, "loop", "frame", [1], None,
                      verify=True)


def test_verify_detects_step_divergence():
    storage = [0]
    shim = _VerifyShim(storage, expected=7)

    def fn(interp, frame, iterations):
        log = interp.write_log
        key = (id(storage), 0)
        if key not in log:
            log[key] = (storage, storage[0])
        storage[0] = 7
        interp.steps += 3  # interpreted counts 1

    with pytest.raises(EmulationError, match="step counts differ"):
        execute_chunk(_entry(fn), shim, "loop", "frame", [1], None,
                      verify=True)


def test_verify_compiled_error_with_interpreted_success_diverges():
    storage = [0]
    shim = _VerifyShim(storage, expected=7)

    def fn(interp, frame, iterations):
        raise EmulationError("boom")

    with pytest.raises(EmulationError, match="interpreter succeeded"):
        execute_chunk(_entry(fn), shim, "loop", "frame", [1], None,
                      verify=True)
    assert storage[0] == 7  # interpreted effects kept


def test_verify_bailout_is_not_a_divergence():
    storage = [0]
    shim = _VerifyShim(storage, expected=7)

    def fn(interp, frame, iterations):
        raise Bailout()

    mode = execute_chunk(_entry(fn), shim, "loop", "frame", [1], None,
                         verify=True)
    assert mode == "interpreted"
    assert storage[0] == 7


def test_verify_both_raise_reraises_interpreted_error():
    storage = [0]

    class _Raises(_VerifyShim):
        def run_chunk(self, loop, frame, iterations, locks,
                      outer=None):
            raise EmulationError("interpreted boom")

    shim = _Raises(storage, expected=7)

    def fn(interp, frame, iterations):
        raise EmulationError("compiled boom")

    with pytest.raises(EmulationError, match="interpreted boom"):
        execute_chunk(_entry(fn), shim, "loop", "frame", [1], None,
                      verify=True)


# -- runtime helpers -------------------------------------------------------------


def test_guarded_math_maps_value_errors():
    with pytest.raises(EmulationError, match="math error in sqrt"):
        codegen_runtime.u_sqrt(-1.0)
    assert codegen_runtime.u_floor(2.7) == 2.0
    assert codegen_runtime.u_not(True) is False
    assert codegen_runtime.u_not(0) == -1


def test_unbound_register_maps_unboundlocal_to_interpreter_error():
    error = UnboundLocalError(
        "local variable '_r12' referenced before assignment"
    )
    error.name = "_r12"
    mapped = codegen_runtime.unbound_register(error)
    assert isinstance(mapped, EmulationError)
    assert str(mapped) == "use of unexecuted instruction %12"
    # Pointer halves map to the same instruction uid.
    halves = codegen_runtime.unbound_register(
        UnboundLocalError("x", name="_r7_s")
    )
    assert str(halves) == "use of unexecuted instruction %7"


# -- guard hoisting --------------------------------------------------------------


INDIRECT = """
global a: int[32];
global b: int[32];

func main() {
  pragma omp parallel_for
  for i in 0..32 {
    a[b[i]] = i;
  }
  print(a[0]);
}
"""


def test_affine_guards_hoist_to_fast_and_slow_variants():
    _module, loop = _loop(SIMPLE)
    source = compile_chunk(loop, logged=False).source
    assert "_fast = (" in source
    assert "if _fast:" in source
    assert "min(iterations)" in source and "max(iterations)" in source
    # The guarded body survives verbatim as the fallback branch, with
    # the interpreter's exact out-of-bounds error.
    assert "out of bounds for" in source
    fast, _, slow = source.partition("if _fast:")
    # Identical step accounting in both variants.
    import re

    fast_steps = re.findall(r"_steps \+= (\d+)", slow)
    assert len(fast_steps) == 2
    assert fast_steps[0] == fast_steps[1]


def test_indirect_index_keeps_per_iteration_guards():
    _module, loop = _loop(INDIRECT)
    source = compile_chunk(loop, logged=False).source
    # b[i] hoists (affine), a[b[i]] cannot: the body still splits, but
    # the a-guard stays in the fast branch too.
    fast, sep, slow = source.partition("if _fast:")
    if sep:  # the b[i] guard hoisted
        fast_branch, _, slow_branch = slow.partition("else:")
        assert fast_branch.count("out of bounds") == 1  # a[...] only
        assert slow_branch.count("out of bounds") == 2
    else:
        assert source.count("out of bounds") == 2


# -- sequential stretches --------------------------------------------------------


def test_compile_sequence_lowers_whole_function():
    from repro.codegen.seq import compile_sequence

    module = compile_source(SIMPLE)
    entry = compile_sequence(module.function("main"), (), logged=False)
    assert entry.label == "@main"
    # Interpreter-exact semantics: the sequential step-limit message,
    # the UnboundLocalError -> "use of unexecuted instruction" mapping,
    # and a real return.
    assert "exceeded max_steps=" in entry.source
    assert "_unbound" in entry.source
    assert "return" in entry.source


def test_sequence_stops_follow_function_block_order():
    from types import SimpleNamespace

    from repro.codegen.seq import sequence_stops

    module = compile_source(SIMPLE)
    function = module.function("main")
    names = [block.name for block in function.blocks]
    # Register regions against the last and first blocks; the spec must
    # come back in block order regardless.
    regions = {
        names[-1]: SimpleNamespace(
            recipes=[SimpleNamespace(header=names[-1])]
        ),
        names[0]: SimpleNamespace(
            recipes=[SimpleNamespace(header=names[0])]
        ),
    }
    stops = sequence_stops(regions, function)
    assert stops == (
        (names[0], (names[0],)),
        (names[-1], (names[-1],)),
    )


def test_compiled_sequence_rebuilds_from_source_cache():
    from repro.runtime.payload import module_codec

    codegen_cache.reset()
    module = compile_source(SIMPLE)
    codec = module_codec(module)
    first = codegen_cache.compiled_sequence(
        module, module.function("main"), (), logged=False,
        module_key=codec.key,
    )
    assert first is not None
    before = codegen_cache.stats()
    # Re-decode the same content into new IR objects: the object layer
    # misses, the source layer rebuilds without re-lowering.
    import pickle

    clone = pickle.loads(codec.module_bytes)
    rebuilt = codegen_cache.compiled_sequence(
        clone, clone.function("main"), (), logged=False,
        module_key=codec.key,
    )
    after = codegen_cache.stats()
    assert rebuilt is not None and rebuilt is not first
    assert rebuilt.source == first.source
    assert after["compiles"] == before["compiles"]
    assert after["source_hits"] == before["source_hits"] + 1
