"""Shared fixtures and helpers for the test suite."""

import os
import sys

import pytest

from repro.frontend import compile_source

# Make the shared helper package (tests/support) importable from every
# test module regardless of which directory pytest rooted it in.
_TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
if _TESTS_DIR not in sys.path:
    sys.path.insert(0, _TESTS_DIR)


@pytest.fixture(autouse=True)
def _fresh_codec_caches():
    """Reset the payload codec's module-global caches around every test.

    The codec keeps parent-side module byte caches, per-epoch broadcast
    bookkeeping, and (in-process) decoded-module/resident-prelude caches;
    without this fixture a test's observed wire bytes would depend on
    which session happened to dispatch first in the same process.
    Deliberately does *not* recycle the chunk pool — forking a pool per
    test would dominate suite runtime; tests that need a cold pool use
    their own fixture.
    """
    from repro.runtime import faults, knobs, payload

    knobs.refresh()
    payload.reset_codec_caches()
    faults.reset()
    from repro.codegen import cache as codegen_cache

    codegen_cache.reset()
    yield


@pytest.fixture
def compile_():
    """Compile MiniOMP source to a verified module."""
    return compile_source


def compile_main(source):
    """Compile and return (module, main function)."""
    module = compile_source(source)
    return module, module.function("main")


SIMPLE_LOOP = """
func main() {
  var s: int = 0;
  for i in 0..10 {
    s = s + i;
  }
  print(s);
}
"""

AFFINE_ARRAY_LOOP = """
global a: int[16];
global b: int[16];

func main() {
  for i in 0..16 {
    a[i] = i * 2;
    b[i] = a[i] + 1;
  }
  print(b[7]);
}
"""
