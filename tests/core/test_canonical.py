"""Canonical signatures: stability, sensitivity, permutation invariance."""

from repro.core import build_pspdg, full, signature
from repro.frontend import compile_source


def sig_of(source):
    module = compile_source(source)
    graph = build_pspdg(module.function("main"), module)
    return signature(full(graph))


BASE = (
    "global a: int[8];\n"
    "func main() { pragma omp for\nfor i in 0..8 { a[i] = i; } }"
)


def test_signature_is_deterministic():
    assert sig_of(BASE) == sig_of(BASE)


def test_signature_ignores_variable_names():
    renamed = BASE.replace("a:", "zz:").replace("a[", "zz[")
    assert sig_of(BASE) == sig_of(renamed)


def test_signature_sees_constants():
    changed = BASE.replace("a[i] = i;", "a[i] = i + 1;")
    assert sig_of(BASE) != sig_of(changed)


def test_signature_sees_directives():
    unannotated = BASE.replace("pragma omp for\n", "")
    assert sig_of(BASE) != sig_of(unannotated)


def test_signature_sees_clauses():
    with_clause = BASE.replace(
        "pragma omp for", "pragma omp for schedule(static)"
    )
    # schedule has no semantic content: graphs must match.
    assert sig_of(BASE) == sig_of(with_clause)


def test_signature_distinguishes_reduction_ops():
    sum_src = (
        "func main() { var s: int = 0;\n"
        "pragma omp for reduction(+: s)\n"
        "for i in 0..8 { s = s + i; }\nprint(s); }"
    )
    # A different reduction operator is a different parallel semantics
    # even though the loop body changes with it.
    max_src = (
        "func main() { var s: int = 0;\n"
        "pragma omp for reduction(max: s)\n"
        "for i in 0..8 { s = max(s, i); }\nprint(s); }"
    )
    assert sig_of(sum_src) != sig_of(max_src)


def test_statement_order_changes_signature_only_when_meaningful():
    two_stores = (
        "global a: int[8];\nglobal b: int[8];\n"
        "func main() { for i in 0..8 { a[i] = 1; b[i] = 2; } }"
    )
    swapped = (
        "global a: int[8];\nglobal b: int[8];\n"
        "func main() { for i in 0..8 { b[i] = 2; a[i] = 1; } }"
    )
    # Different constants flow to different arrays; the graphs differ
    # textually but are isomorphic up to renaming... except the constants
    # 1/2 pin the stores, so the signatures coincide iff the dependence
    # structure coincides — which it does (independent stores).
    assert sig_of(two_stores) == sig_of(swapped)
