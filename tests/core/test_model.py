"""PS-PDG model unit tests (Table 1 structures)."""

import pytest

from repro.core import (
    DataSelector,
    HierarchicalNode,
    InstructionNode,
    PSPDG,
    Trait,
    TRAIT_ATOMIC,
    TRAIT_SINGULAR,
)
from repro.frontend import compile_source


def small_graph():
    module = compile_source("func main() { print(1); }")
    function = module.function("main")
    graph = PSPDG(function)
    return graph, function


class TestTraits:
    def test_unknown_trait_kind_rejected(self):
        with pytest.raises(ValueError):
            Trait("fuzzy", "ctx")

    def test_traits_deduplicate(self):
        node = HierarchicalNode("region", context_label="c0")
        node.add_trait(Trait(TRAIT_ATOMIC, "c1"))
        node.add_trait(Trait(TRAIT_ATOMIC, "c1"))
        assert len(node.traits) == 1

    def test_has_trait_with_and_without_context(self):
        node = HierarchicalNode("region", context_label="c0")
        node.add_trait(Trait(TRAIT_SINGULAR, "c1"))
        assert node.has_trait(TRAIT_SINGULAR)
        assert node.has_trait(TRAIT_SINGULAR, "c1")
        assert not node.has_trait(TRAIT_SINGULAR, "c2")


class TestSelectors:
    def test_unknown_selector_kind_rejected(self):
        with pytest.raises(ValueError):
            DataSelector("whichever", "ctx")

    def test_selectors_are_value_objects(self):
        assert DataSelector("any_producer", "c") == DataSelector(
            "any_producer", "c"
        )


class TestHierarchy:
    def test_leaf_instructions_recurse(self):
        graph, function = small_graph()
        outer = HierarchicalNode("outer", context_label="o")
        inner = HierarchicalNode("inner", context_label="i")
        outer.add_child(inner)
        insts = list(function.instructions())
        for inst in insts:
            inner.add_child(InstructionNode(inst))
        assert set(outer.leaf_instructions()) == set(insts)

    def test_ancestors_chain(self):
        outer = HierarchicalNode("outer", context_label="o")
        inner = HierarchicalNode("inner", context_label="i")
        leaf = HierarchicalNode("leaf", context_label="l")
        outer.add_child(inner)
        inner.add_child(leaf)
        assert [a.kind for a in leaf.ancestors()] == ["inner", "outer"]

    def test_unlabeled_hierarchical_node_is_not_context(self):
        node = HierarchicalNode("region")
        assert not node.is_context()

    def test_register_context_requires_label(self):
        graph, _ = small_graph()
        with pytest.raises(ValueError):
            graph.register_context(HierarchicalNode("region"))


class TestContextChains:
    def test_chain_walks_enclosing_contexts(self):
        module = compile_source(
            "func main() {\n"
            "  pragma omp parallel\n"
            "  {\n"
            "    pragma omp for\n"
            "    for i in 0..4 { }\n"
            "  }\n"
            "}"
        )
        from repro.core import build_pspdg

        graph = build_pspdg(module.function("main"), module)
        loop_label = next(iter(graph.context_of_loop.values()))
        chain = graph.context_chain(loop_label)
        # loop -> for annotation -> parallel annotation -> "" (program).
        assert chain[-1] == ""
        assert len(chain) >= 3

    def test_variables_for_context_inherit_outer(self):
        module = compile_source(
            "global t: int;\npragma omp threadprivate(t)\n"
            "func main() { pragma omp for\nfor i in 0..4 { t = i; } }"
        )
        from repro.core import build_pspdg

        graph = build_pspdg(module.function("main"), module)
        loop_label = next(iter(graph.context_of_loop.values()))
        variables = graph.variables_for_context(loop_label)
        names = {v.name for v in variables}
        assert "t" in names  # program-wide threadprivate applies everywhere
