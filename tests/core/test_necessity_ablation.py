"""Section 4 executable: the Fig. 11 necessity argument plus ablation laws."""

import pytest

from repro.core import (
    build_pspdg,
    full,
    project,
    same_representation,
    signature,
    without_contexts,
    without_hierarchical_and_undirected,
    without_selectors,
    without_traits,
    without_variables,
)
from repro.frontend import compile_source
from repro.workloads.necessity import PAIRS, build_pair_graphs, demonstrate


@pytest.mark.parametrize("pair", PAIRS, ids=[p.key for p in PAIRS])
class TestFig11:
    def test_full_representations_differ(self, pair):
        full_equal, _ = demonstrate(pair)
        assert not full_equal, (
            f"pair {pair.key}: the two programs have different parallel "
            f"semantics, so their full PS-PDGs must differ"
        )

    def test_reduced_representations_collapse(self, pair):
        _, reduced_equal = demonstrate(pair)
        assert reduced_equal, (
            f"pair {pair.key}: without {pair.feature} the two programs "
            f"must become indistinguishable"
        )

    def test_fast_and_slow_programs_execute(self, pair):
        from repro.emulator import run_source

        for source in pair.sources().values():
            result = run_source(source)
            assert result.steps > 0


class TestProjectionLaws:
    SOURCE = (
        "global h: int[4];\n"
        "func main() { var s: int = 0;\n"
        "pragma omp parallel_for reduction(+: s)\n"
        "for i in 0..8 {\n"
        "  s = s + i;\n"
        "  pragma omp critical\n"
        "  { h[i % 4] = h[i % 4] + 1; }\n"
        "}\nprint(s); }"
    )

    def _graph(self):
        module = compile_source(self.SOURCE)
        return build_pspdg(module.function("main"), module)

    def test_identity_projection_is_deterministic(self):
        g1 = self._graph()
        g2 = self._graph()
        assert signature(full(g1)) == signature(full(g2))

    def test_projection_is_stable(self):
        graph = self._graph()
        assert signature(without_traits(graph)) == signature(
            without_traits(graph)
        )

    def test_each_projection_differs_from_full(self):
        graph = self._graph()
        full_sig = signature(full(graph))
        for projection in (
            without_hierarchical_and_undirected,
            without_traits,
            without_contexts,
            without_variables,
        ):
            assert signature(projection(graph)) != full_sig

    def test_variables_dropped_without_psv(self):
        graph = self._graph()
        assert without_variables(graph).variables == []
        assert full(graph).variables != []

    def test_hierarchy_flattened_without_hn(self):
        graph = self._graph()
        reduced = without_hierarchical_and_undirected(graph)
        assert all(n.color != "hnode" for n in reduced.nodes)

    def test_without_contexts_drops_context_parameterized_features(self):
        graph = self._graph()
        reduced = without_contexts(graph)
        assert reduced.variables == []
        assert all(not n.traits for n in reduced.nodes)

    def test_project_accepts_multiple_features(self):
        graph = self._graph()
        reduced = project(graph, {"nt", "dsde"})
        assert reduced.removed_features == ("dsde", "nt")

    def test_same_representation_helper(self):
        graph = self._graph()
        assert same_representation(full(graph), full(graph))
