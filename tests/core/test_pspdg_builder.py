"""PS-PDG construction: hierarchy, contexts, traits, edges, variables."""

from repro.core import (
    TRAIT_ATOMIC,
    TRAIT_SINGULAR,
    TRAIT_UNORDERED,
    VAR_PRIVATIZABLE,
    VAR_REDUCIBLE,
    build_pspdg,
)
from repro.frontend import compile_source


def pspdg_for(source):
    module = compile_source(source)
    return build_pspdg(module.function("main"), module)


class TestHierarchy:
    def test_loops_become_labeled_contexts(self):
        graph = pspdg_for("func main() { for i in 0..4 { } }")
        loop_nodes = [
            n for n in graph.hierarchical_nodes() if n.kind == "loop"
        ]
        assert len(loop_nodes) == 1
        assert loop_nodes[0].is_context()
        assert loop_nodes[0].context_label in graph.contexts

    def test_regions_nest_inside_loops_and_parallels(self):
        graph = pspdg_for(
            "global h: int[4];\n"
            "func main() {\n"
            "  pragma omp parallel_for\n"
            "  for i in 0..4 {\n"
            "    pragma omp critical\n"
            "    { h[0] = h[0] + 1; }\n"
            "  }\n"
            "}"
        )
        critical = next(
            n for n in graph.hierarchical_nodes() if n.kind == "critical"
        )
        ancestor_kinds = {a.kind for a in critical.ancestors()}
        assert "loop" in ancestor_kinds
        assert "parallel_for" in ancestor_kinds

    def test_instructions_attach_to_innermost_region(self):
        graph = pspdg_for(
            "func main() { for i in 0..4 { print(i); } }"
        )
        printer = next(
            inst
            for inst in graph.instruction_nodes
            if inst.opcode == "print"
        )
        node = graph.node_of(printer)
        assert node.parent.kind == "loop"

    def test_statistics_cover_features(self):
        graph = pspdg_for(
            "func main() { var s: int = 0;\n"
            "pragma omp parallel_for reduction(+: s)\n"
            "for i in 0..4 { s = s + i; }\nprint(s); }"
        )
        stats = graph.statistics()
        assert stats["hierarchical_nodes"] >= 2
        assert stats["reducible"] == 1
        assert stats["relaxations"] > 0


class TestWorksharingSemantics:
    def test_carried_dependences_removed_in_context(self):
        graph = pspdg_for(
            "global a: int[8];\nglobal k: int[8];\n"
            "func main() {\n"
            "  pragma omp parallel_for\n"
            "  for i in 0..8 { a[k[i]] = a[k[i]] + 1; }\n"
            "}"
        )
        loop_label = next(iter(graph.context_of_loop.values()))
        carried = [
            e
            for e in graph.directed_edges
            if loop_label in e.carried_contexts
        ]
        assert carried == []
        assert any(
            r.feature == "independence" for r in graph.relaxations
        )

    def test_unannotated_loop_keeps_dependences(self):
        graph = pspdg_for(
            "global a: int[8];\nglobal k: int[8];\n"
            "func main() { for i in 0..8 { a[k[i]] = a[k[i]] + 1; } }"
        )
        loop_label = next(iter(graph.context_of_loop.values()))
        carried = [
            e
            for e in graph.directed_edges
            if loop_label in e.carried_contexts
        ]
        assert carried

    def test_context_scoping_of_inner_annotation(self):
        # Outer loop's carried deps survive when only the inner loop is
        # annotated (the independence is valid only in the inner context).
        graph = pspdg_for(
            "global a: int[8];\nglobal k: int[8];\n"
            "func main() {\n"
            "  for t in 0..2 {\n"
            "    pragma omp for\n"
            "    for i in 0..8 { a[k[i]] = a[k[i]] + 1; }\n"
            "  }\n"
            "}"
        )
        outer_label = next(
            label
            for header, label in graph.context_of_loop.items()
            if header == "for.header"
        )
        outer_carried = [
            e
            for e in graph.directed_edges
            if outer_label in e.carried_contexts
        ]
        assert outer_carried


class TestOrderingSemantics:
    CRITICAL = (
        "global h: int[4];\n"
        "func main() {\n"
        "  pragma omp parallel_for\n"
        "  for i in 0..8 {\n"
        "    pragma omp critical\n"
        "    { h[i % 4] = h[i % 4] + 1; }\n"
        "  }\n"
        "}"
    )

    def test_critical_gets_atomic_and_unordered_traits(self):
        graph = pspdg_for(self.CRITICAL)
        critical = next(
            n for n in graph.hierarchical_nodes() if n.kind == "critical"
        )
        assert critical.has_trait(TRAIT_ATOMIC)
        assert critical.has_trait(TRAIT_UNORDERED)

    def test_critical_produces_undirected_self_edge(self):
        graph = pspdg_for(self.CRITICAL)
        assert graph.undirected_edges
        edge = graph.undirected_edges[0]
        assert edge.a is edge.b

    def test_ordered_region_keeps_directed_dependences(self):
        graph = pspdg_for(self.CRITICAL.replace("omp critical", "omp ordered"))
        assert not graph.undirected_edges
        loop_label = next(iter(graph.context_of_loop.values()))
        carried = [
            e
            for e in graph.directed_edges
            if loop_label in e.carried_contexts
        ]
        assert carried

    def test_single_gets_singular_trait(self):
        graph = pspdg_for(
            "func main() {\n"
            "  pragma omp parallel\n"
            "  {\n"
            "    pragma omp single\n"
            "    { print(1); }\n"
            "  }\n"
            "}"
        )
        single = next(
            n for n in graph.hierarchical_nodes() if n.kind == "single"
        )
        assert single.has_trait(TRAIT_SINGULAR)

    def test_same_name_criticals_share_lock(self):
        graph = pspdg_for(
            "global a: int;\nglobal b: int;\n"
            "func main() {\n"
            "  pragma omp parallel_for\n"
            "  for i in 0..4 {\n"
            "    pragma omp critical(lock)\n"
            "    { a = a + 1; }\n"
            "    pragma omp critical(lock)\n"
            "    { b = b + 1; }\n"
            "  }\n"
            "}"
        )
        cross = [
            e for e in graph.undirected_edges if e.a is not e.b
        ]
        assert cross, "same-name criticals must be linked"


class TestVariables:
    def test_reduction_variable(self):
        graph = pspdg_for(
            "func main() { var s: int = 0;\n"
            "pragma omp parallel_for reduction(+: s)\n"
            "for i in 0..4 { s = s + i; }\nprint(s); }"
        )
        reducible = [v for v in graph.variables if v.is_reducible()]
        assert len(reducible) == 1
        assert reducible[0].reducer_op == "+"
        access = next(
            a for a in graph.accesses if a.variable is reducible[0]
        )
        assert access.use_nodes and access.def_nodes

    def test_threadprivate_global(self):
        graph = pspdg_for(
            "global t: int[4];\npragma omp threadprivate(t)\n"
            "func main() { t[0] = 1; print(t[0]); }"
        )
        assert any(
            v.semantics == VAR_PRIVATIZABLE and v.context == ""
            for v in graph.variables
        )

    def test_induction_variable_registered(self):
        graph = pspdg_for(
            "func main() { pragma omp for\nfor i in 0..4 { } }"
        )
        names = {v.name for v in graph.variables}
        assert "i" in names

    def test_private_array_variable(self):
        graph = pspdg_for(
            "global v: float[64];\n"
            "func main() {\n"
            "  var t: float[8];\n"
            "  pragma omp parallel_for private(t)\n"
            "  for p in 0..8 {\n"
            "    for j in 0..8 { t[j] = v[p * 8 + j]; }\n"
            "    for j in 0..8 { v[p * 8 + j] = t[j] * 2.0; }\n"
            "  }\n"
            "}"
        )
        private = [
            v for v in graph.variables
            if v.semantics == VAR_PRIVATIZABLE and v.name == "t"
        ]
        assert private
        # Carried deps on t at the annotated loop are relaxed as variable
        # semantics (the J&K view must not replay them).
        assert any(r.feature == "variable" for r in graph.relaxations)


class TestSelectors:
    def test_lastprivate_selector(self):
        graph = pspdg_for(
            "global a: int[8];\n"
            "func main() { var v: int = 0;\n"
            "pragma omp parallel_for lastprivate(v)\n"
            "for i in 0..8 { v = a[i]; }\nprint(v); }"
        )
        selectors = [
            e.selector.kind
            for e in graph.directed_edges
            if e.selector is not None
        ]
        assert "last_producer" in selectors

    def test_anyvalue_selector(self):
        graph = pspdg_for(
            "global a: int[8];\n"
            "func main() { var v: int = 0;\n"
            "pragma omp parallel_for anyvalue(v)\n"
            "for i in 0..8 { v = a[i]; }\nprint(v); }"
        )
        selectors = [
            e.selector.kind
            for e in graph.directed_edges
            if e.selector is not None
        ]
        assert "any_producer" in selectors

    def test_firstprivate_selector(self):
        graph = pspdg_for(
            "global a: int[8];\n"
            "func main() { var seed: int = 3;\n"
            "pragma omp parallel_for firstprivate(seed)\n"
            "for i in 0..8 { a[i] = seed; }\nprint(a[0]); }"
        )
        selectors = [
            e.selector.kind
            for e in graph.directed_edges
            if e.selector is not None
        ]
        assert "all_consumers" in selectors


class TestTasks:
    def test_independent_tasks_lose_cross_edges(self):
        graph = pspdg_for(
            "global x: int;\nglobal y: int;\n"
            "func main() {\n"
            "  pragma omp parallel\n"
            "  {\n"
            "    pragma omp task\n"
            "    { x = 1; }\n"
            "    pragma omp task\n"
            "    { x = 2; }\n"
            "  }\n"
            "  print(x);\n"
            "}"
        )
        assert any(r.feature == "task" for r in graph.relaxations)

    def test_depend_clauses_preserve_order(self):
        graph = pspdg_for(
            "global x: int;\n"
            "func main() {\n"
            "  pragma omp parallel\n"
            "  {\n"
            "    pragma omp task depend(out: x)\n"
            "    { x = 1; }\n"
            "    pragma omp task depend(in: x)\n"
            "    { print(x); }\n"
            "  }\n"
            "}"
        )
        assert not any(r.feature == "task" for r in graph.relaxations)

    def test_barrier_gets_sync_edges(self):
        graph = pspdg_for(
            "global x: int;\n"
            "func main() {\n"
            "  pragma omp parallel\n"
            "  {\n"
            "    pragma omp task\n"
            "    { x = 1; }\n"
            "    pragma omp barrier\n"
            "    pragma omp task\n"
            "    { x = 2; }\n"
            "  }\n"
            "}"
        )
        sync_edges = [e for e in graph.directed_edges if e.kind == "sync"]
        assert sync_edges
