"""Section 5 / Appendix A executable: OpenMP and Cilk sufficiency.

For every supported construct, compile a representative program and verify
the built PS-PDG exhibits every feature the paper's mapping promises.
"""

import pytest

from repro.core import build_pspdg, missing_features
from repro.frontend import compile_source

# Representative program per directive kind (the construct under test is
# always the *first* annotation in the main function).
CONSTRUCT_PROGRAMS = {
    "parallel": (
        "func main() { pragma omp parallel\n{ print(1); } }"
    ),
    "for": (
        "global a: int[4];\nfunc main() { pragma omp for\n"
        "for i in 0..4 { a[i] = i; } }"
    ),
    "parallel_for": (
        "global a: int[4];\nfunc main() { pragma omp parallel for\n"
        "for i in 0..4 { a[i] = i; } }"
    ),
    "taskloop": (
        "global a: int[4];\nfunc main() { pragma omp taskloop\n"
        "for i in 0..4 { a[i] = i; } }"
    ),
    "simd": (
        "global a: int[4];\nfunc main() { pragma omp simd\n"
        "for i in 0..4 { a[i] = i; } }"
    ),
    "sections": (
        "func main() { pragma omp sections\n{ print(1); } }"
    ),
    "section": (
        "func main() { pragma omp section\n{ print(1); } }"
    ),
    "task": (
        "global x: int;\nfunc main() { pragma omp task\n{ x = 1; } }"
    ),
    "critical": (
        "global h: int;\nfunc main() {\n"
        "  pragma omp parallel_for\n"
        "  for i in 0..4 {\n"
        "    pragma omp critical\n    { h = h + 1; }\n  }\n}"
    ),
    "atomic": (
        "global h: int;\nfunc main() {\n"
        "  pragma omp parallel_for\n"
        "  for i in 0..4 {\n"
        "    pragma omp atomic\n    { h = h + 1; }\n  }\n}"
    ),
    "ordered": (
        "global h: int;\nfunc main() {\n"
        "  pragma omp parallel_for\n"
        "  for i in 0..4 {\n"
        "    pragma omp ordered\n    { h = h + 1; }\n  }\n}"
    ),
    "single": (
        "func main() { pragma omp parallel\n{\n"
        "  pragma omp single\n  { print(1); }\n} }"
    ),
    "master": (
        "func main() { pragma omp parallel\n{\n"
        "  pragma omp master\n  { print(1); }\n} }"
    ),
    "barrier": (
        "global x: int;\nfunc main() { pragma omp parallel\n{\n"
        "  pragma omp task\n  { x = 1; }\n"
        "  pragma omp barrier\n} }"
    ),
    "taskwait": (
        "global x: int;\nfunc main() { pragma omp parallel\n{\n"
        "  pragma omp task\n  { x = 1; }\n"
        "  pragma omp taskwait\n} }"
    ),
}

CLAUSE_PROGRAMS = {
    "private": (
        "func main() { var t: int = 0;\n"
        "pragma omp parallel_for private(t)\n"
        "for i in 0..4 { t = i; } }"
    ),
    "firstprivate": (
        "global a: int[4];\nfunc main() { var t: int = 3;\n"
        "pragma omp parallel_for firstprivate(t)\n"
        "for i in 0..4 { a[i] = t; } }"
    ),
    "lastprivate": (
        "global a: int[4];\nfunc main() { var t: int = 0;\n"
        "pragma omp parallel_for lastprivate(t)\n"
        "for i in 0..4 { t = a[i]; }\nprint(t); }"
    ),
    "reduction": (
        "func main() { var s: int = 0;\n"
        "pragma omp parallel_for reduction(+: s)\n"
        "for i in 0..4 { s = s + i; }\nprint(s); }"
    ),
    "anyvalue": (
        "global a: int[4];\nfunc main() { var t: int = 0;\n"
        "pragma omp parallel_for anyvalue(t)\n"
        "for i in 0..4 { t = a[i]; }\nprint(t); }"
    ),
}

CILK_PROGRAMS = {
    "cilk_spawn": (
        "func w(x: int) -> int { return x * 2; }\n"
        "func main() { var r: int = 0; spawn r = w(5); sync; print(r); }"
    ),
    "cilk_sync": (
        "func w(x: int) -> int { return x * 2; }\n"
        "func main() { var r: int = 0; spawn r = w(5); sync; print(r); }"
    ),
    "cilk_for": (
        "global a: int[4];\n"
        "func main() { cilk_for i in 0..4 { a[i] = i; } }"
    ),
    "cilk_scope": (
        "func w(x: int) -> int { return x; }\n"
        "func main() { cilk_scope { var r: int = 0; spawn r = w(1); } }"
    ),
    "cilk_reducer": (
        "func main() { var s: int reducer(+) = 0;\n"
        "cilk_for i in 0..4 { s = s + i; }\nprint(s); }"
    ),
}


def _check(source, kind):
    module = compile_source(source)
    function = module.function("main")
    graph = build_pspdg(function, module)
    annotation = next(
        a for a in function.annotations if a.directive.kind == kind
    )
    missing = missing_features(graph, annotation)
    assert not missing, (
        f"{kind}: PS-PDG lacks promised features {sorted(missing)}"
    )


@pytest.mark.parametrize("kind", sorted(CONSTRUCT_PROGRAMS))
def test_openmp_construct_maps_to_pspdg_features(kind):
    _check(CONSTRUCT_PROGRAMS[kind], kind)


@pytest.mark.parametrize("clause", sorted(CLAUSE_PROGRAMS))
def test_openmp_clause_maps_to_pspdg_features(clause):
    source = CLAUSE_PROGRAMS[clause]
    module = compile_source(source)
    function = module.function("main")
    graph = build_pspdg(function, module)
    annotation = function.annotations[0]
    missing = missing_features(graph, annotation)
    assert not missing, f"{clause}: missing {sorted(missing)}"


@pytest.mark.parametrize("kind", sorted(CILK_PROGRAMS))
def test_cilk_construct_maps_to_pspdg_features(kind):
    source = CILK_PROGRAMS[kind]
    module = compile_source(source)
    function = module.function("main")
    graph = build_pspdg(function, module)
    annotation = next(
        (a for a in function.annotations if a.directive.kind == kind), None
    )
    assert annotation is not None, f"no {kind} annotation was recorded"
    missing = missing_features(graph, annotation)
    assert not missing, f"{kind}: missing {sorted(missing)}"


def test_threadprivate_maps_to_privatizable_variable():
    module = compile_source(
        "global t: int;\npragma omp threadprivate(t)\n"
        "func main() { t = 1; print(t); }"
    )
    graph = build_pspdg(module.function("main"), module)
    assert any(
        v.semantics == "privatizable" and v.context == ""
        for v in graph.variables
    )


def test_cilk_programs_execute_correctly():
    from repro.emulator import run_source

    assert run_source(CILK_PROGRAMS["cilk_spawn"]).formatted_output() == [
        "10"
    ]
    assert run_source(CILK_PROGRAMS["cilk_reducer"]).formatted_output() == [
        "6"
    ]
