"""Reference interpreter: semantics, output, faults, profiling hooks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.emulator import run_source
from repro.util.errors import EmulationError


def outputs(source):
    return run_source(source).formatted_output()


class TestArithmetic:
    def test_integer_ops(self):
        assert outputs(
            "func main() { print(7 + 3, 7 - 3, 7 * 3, 7 / 3, 7 % 3); }"
        ) == ["10 4 21 2 1"]

    def test_truncating_division_toward_zero(self):
        assert outputs("func main() { print(-7 / 2, -7 % 2); }") == ["-3 -1"]

    def test_float_math(self):
        assert outputs(
            "func main() { print(sqrt(9.0), floor(2.7), abs(-1.5)); }"
        ) == ["3 2 1.5"]

    def test_min_max(self):
        assert outputs("func main() { print(min(2, 5), max(2, 5)); }") == [
            "2 5"
        ]

    def test_casts(self):
        assert outputs(
            "func main() { print(int(3.9), float(2) * 0.5, int(true)); }"
        ) == ["3 1 1"]

    def test_comparisons_and_logic(self):
        assert outputs(
            "func main() { print(1 < 2 && 3 > 4, 1 < 2 || 3 > 4, !(1 < 2)); }"
        ) == ["false true false"]

    def test_division_by_zero_raises(self):
        with pytest.raises(EmulationError):
            run_source("func main() { var z: int = 0; print(1 / z); }")

    @given(st.integers(-100, 100), st.integers(-100, 100))
    @settings(max_examples=40, deadline=None)
    def test_addition_matches_python(self, a, b):
        result = run_source(
            f"func main() {{ print({a} + {b}, {a} * {b}); }}"
        )
        assert result.output[0][1] == (a + b, a * b)


class TestControlFlow:
    def test_if_else(self):
        assert outputs(
            "func main() { var x: int = 3;\n"
            "if (x > 2) { print(1); } else { print(2); } }"
        ) == ["1"]

    def test_for_loop_accumulation(self):
        assert outputs(
            "func main() { var s: int = 0;\n"
            "for i in 0..5 { s = s + i; } print(s); }"
        ) == ["10"]

    def test_for_loop_with_step(self):
        assert outputs(
            "func main() { var s: int = 0;\n"
            "for i in 0..10 step 3 { s = s + i; } print(s); }"
        ) == ["18"]

    def test_while_loop(self):
        assert outputs(
            "func main() { var x: int = 1;\n"
            "while (x < 100) { x = x * 2; } print(x); }"
        ) == ["128"]

    def test_nested_loops(self):
        assert outputs(
            "func main() { var s: int = 0;\n"
            "for i in 0..3 { for j in 0..3 { s = s + i * j; } } print(s); }"
        ) == ["9"]

    def test_infinite_loop_guard(self):
        from repro.emulator import Interpreter
        from repro.frontend import compile_source

        module = compile_source(
            "func main() { var x: int = 0; while (x < 1) { x = x * 1; } }"
        )
        with pytest.raises(EmulationError):
            Interpreter(module, max_steps=10_000).run()


class TestMemory:
    def test_arrays_zero_initialized(self):
        assert outputs(
            "func main() { var a: int[4]; print(a[0], a[3]); }"
        ) == ["0 0"]

    def test_multidim_arrays(self):
        assert outputs(
            "func main() { var m: int[2][3];\n"
            "m[1][2] = 42; print(m[1][2], m[0][0]); }"
        ) == ["42 0"]

    def test_global_initializer(self):
        assert outputs(
            "global g: int = 9;\nfunc main() { print(g); }"
        ) == ["9"]

    def test_out_of_bounds_raises(self):
        with pytest.raises(EmulationError):
            run_source(
                "func main() { var a: int[2]; var i: int = 5; a[i] = 1; }"
            )

    def test_alloca_in_loop_names_one_object(self):
        # The same alloca re-executed yields the same storage: values
        # persist across iterations.
        assert outputs(
            "func main() {\n"
            "  for i in 0..3 {\n"
            "    var t: int;\n"
            "    t = t + 1;\n"
            "  }\n"
            "  print(1);\n"
            "}"
        ) == ["1"]


class TestCalls:
    def test_scalar_arguments_by_value(self):
        assert outputs(
            "func bump(x: int) -> int { x = x + 1; return x; }\n"
            "func main() { var v: int = 5; print(bump(v), v); }"
        ) == ["6 5"]

    def test_array_arguments_by_reference(self):
        assert outputs(
            "func fill(a: int[3]) { a[1] = 7; }\n"
            "func main() { var a: int[3]; fill(a); print(a[1]); }"
        ) == ["7"]

    def test_recursion(self):
        assert outputs(
            "func fib(n: int) -> int {\n"
            "  if (n < 2) { return n; }\n"
            "  return fib(n - 1) + fib(n - 2);\n"
            "}\n"
            "func main() { print(fib(10)); }"
        ) == ["55"]

    def test_recursive_calls_have_separate_frames(self):
        assert outputs(
            "func weird(n: int) -> int {\n"
            "  var local: int = n;\n"
            "  if (n > 0) { var ignore: int = weird(n - 1); }\n"
            "  return local;\n"
            "}\n"
            "func main() { print(weird(3)); }"
        ) == ["3"]


class TestOutput:
    def test_labels(self):
        assert outputs('func main() { print("x =", 42); }') == ["x = 42"]

    def test_print_order_is_program_order(self):
        assert outputs(
            "func main() { print(1); print(2); print(3); }"
        ) == ["1", "2", "3"]

    def test_float_formatting(self):
        assert outputs("func main() { print(0.1 + 0.2); }") == ["0.3"]


class TestProfiling:
    def test_profile_totals_match_steps(self):
        result = run_source(
            "func main() { var s: int = 0;\n"
            "for i in 0..10 { s = s + i; } print(s); }",
            profile=True,
        )
        assert result.profile.total() == result.steps

    def test_loop_instances_and_iterations(self):
        result = run_source(
            "func main() { for i in 0..4 { for j in 0..3 { } } }",
            profile=True,
        )
        outer = result.profile.loop_instances("for.header")
        assert len(outer) == 1
        inner = result.profile.loop_instances("for.header.1")
        # One inner instance per completed outer iteration.
        assert len(inner) == 4
        assert all(li.trip_count >= 3 for li in inner)

    def test_callee_work_attributed_to_call(self):
        result = run_source(
            "func heavy() { for i in 0..10 { } }\n"
            "func main() { heavy(); }",
            profile=True,
        )
        # All of heavy()'s dynamic work lands on the call instruction in
        # main's profile.
        assert result.profile.total() == result.steps
