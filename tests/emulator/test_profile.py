"""Loop-nest profile structure."""

from repro.emulator import Profiler, run_source


def test_iteration_counts_per_static_instruction():
    result = run_source(
        "global a: int[6];\n"
        "func main() { for i in 0..6 { a[i] = i; } }",
        profile=True,
    )
    (instance,) = result.profile.loop_instances("for.header")
    # 6 full iterations plus the final header evaluation.
    assert instance.trip_count == 7
    full_iterations = [
        it for it in instance.iterations if it.direct_total() > 3
    ]
    assert len(full_iterations) == 6
    first = full_iterations[0]
    assert first.direct_total() == full_iterations[1].direct_total()


def test_nested_instances_attach_to_iterations():
    result = run_source(
        "func main() { for i in 0..3 { for j in 0..2 { } } }",
        profile=True,
    )
    (outer,) = result.profile.loop_instances("for.header")
    with_children = [it for it in outer.iterations if it.children]
    assert len(with_children) == 3
    for iteration in with_children:
        assert iteration.children[0].header_name == "for.header.1"


def test_total_is_direct_plus_children():
    result = run_source(
        "func main() { for i in 0..3 { for j in 0..2 { } } }",
        profile=True,
    )
    root = result.profile.root
    assert root.total() == result.steps
    assert root.total() >= root.direct_total()


def test_count_of_filters_by_uid():
    result = run_source(
        "global a: int[4];\n"
        "func main() { for i in 0..4 { a[i] = i; } }",
        profile=True,
    )
    (instance,) = result.profile.loop_instances("for.header")
    iteration = next(
        it for it in instance.iterations if it.direct_total() > 3
    )
    all_uids = frozenset(iteration.counts)
    assert iteration.count_of(all_uids) == iteration.direct_total()
    assert iteration.count_of(frozenset()) == 0


def test_profiler_manual_protocol():
    profiler = Profiler("f")
    profiler.count(1)
    profiler.enter_loop("L")
    profiler.count(2)
    profiler.next_iteration()
    profiler.count(2)
    profiler.exit_loop()
    profiler.count(3)
    profile = profiler.finish()
    assert profile.root.direct_total() == 2  # uids 1 and 3
    (instance,) = profile.root.children
    assert instance.trip_count == 2
    assert instance.total() == 2
