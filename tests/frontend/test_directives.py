"""Directive model unit tests."""

import pytest

from repro.frontend.directives import (
    Clauses,
    Directive,
    RegionAnnotation,
)
from repro.util.errors import FrontendError


def test_unknown_kind_rejected():
    with pytest.raises(FrontendError):
        Directive("spin")


def test_loop_independence_classification():
    assert Directive("for").declares_loop_independence()
    assert Directive("parallel_for").declares_loop_independence()
    assert Directive("simd").declares_loop_independence()
    assert Directive("cilk_for").declares_loop_independence()
    assert not Directive("parallel").declares_loop_independence()
    assert not Directive("critical").declares_loop_independence()


def test_standalone_classification():
    assert Directive("barrier").is_standalone()
    assert Directive("taskwait").is_standalone()
    assert Directive("cilk_sync").is_standalone()
    assert not Directive("task").is_standalone()


def test_describe_includes_clauses():
    clauses = Clauses(
        private=["x"],
        reductions=[("+", "s")],
        schedule=("static", 4),
        nowait=True,
    )
    text = Directive("for", clauses).describe()
    assert "reduction(+: s)" in text
    assert "private(x)" in text
    assert "schedule(static, 4)" in text
    assert "nowait" in text


def test_all_variable_names_collects_every_clause():
    clauses = Clauses(
        private=["a"],
        firstprivate=["b"],
        lastprivate=["c"],
        shared=["d"],
        anyvalue=["e"],
        reductions=[("+", "f")],
        depends=[("in", "g")],
    )
    assert set(clauses.all_variable_names()) == set("abcdefg")


def test_annotation_binding_lookup():
    annotation = RegionAnnotation(
        uid="omp0",
        directive=Directive("for"),
        block_names=["b"],
        var_bindings={"s": object()},
    )
    assert annotation.binding("s") is annotation.var_bindings["s"]
    with pytest.raises(FrontendError):
        annotation.binding("missing")


def test_annotation_describe():
    annotation = RegionAnnotation(
        uid="omp0",
        directive=Directive("critical"),
        block_names=["c0"],
    )
    assert "omp critical" in annotation.describe()
    assert "c0" in annotation.describe()
