"""MiniOMP lexer."""

import pytest

from repro.frontend import tokenize
from repro.util.errors import FrontendError


def kinds(source):
    return [t.kind for t in tokenize(source) if t.kind != "NEWLINE"]


def texts(source):
    return [t.text for t in tokenize(source) if t.kind != "NEWLINE"]


def test_keywords_become_keyword_tokens():
    assert kinds("func main")[:2] == ["FUNC", "IDENT"]


def test_type_keywords_get_kw_suffix():
    assert kinds("int float bool void")[:4] == [
        "INT_KW",
        "FLOAT_KW",
        "BOOL_KW",
        "VOID_KW",
    ]


def test_integer_vs_float_literals():
    assert kinds("42 4.2 4. 1e3 2.5e-2")[:5] == [
        "INT",
        "FLOAT",
        "FLOAT",
        "FLOAT",
        "FLOAT",
    ]


def test_range_does_not_lex_as_float():
    # "0..10" must be INT DOTDOT INT, not FLOAT '.' INT.
    assert kinds("0..10")[:3] == ["INT", "DOTDOT", "INT"]


def test_two_char_operators():
    assert kinds("<= >= == != && || ->")[:7] == [
        "LE",
        "GE",
        "EQ",
        "NE",
        "AND",
        "OR",
        "ARROW",
    ]


def test_comments_are_skipped():
    assert texts("a // comment here\nb") == ["a", "b", ""]


def test_strings():
    tokens = tokenize('"hello world"')
    assert tokens[0].kind == "STRING"
    assert tokens[0].text == '"hello world"'


def test_line_numbers_tracked():
    tokens = tokenize("a\nb\nc")
    lines = [t.line for t in tokens if t.kind == "IDENT"]
    assert lines == [1, 2, 3]


def test_unexpected_character_reports_position():
    with pytest.raises(FrontendError) as excinfo:
        tokenize("a\n  $")
    assert excinfo.value.line == 2


def test_eof_token_appended():
    assert tokenize("")[-1].kind == "EOF"
