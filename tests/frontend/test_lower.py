"""Lowering: AST -> annotated IR."""

import pytest

from repro.analysis import find_natural_loops
from repro.frontend import compile_source
from repro.ir import verify_module
from repro.util.errors import FrontendError


class TestStructure:
    def test_module_verifies(self):
        module = compile_source(
            "func main() { var x: int = 1; print(x); }"
        )
        verify_module(module)

    def test_for_records_canonical_loop(self):
        module = compile_source("func main() { for i in 2..9 step 3 { } }")
        function = module.function("main")
        assert len(function.loop_info) == 1
        loop = next(iter(function.loop_info.values()))
        assert loop.lower.value == 2
        assert loop.upper.value == 9
        assert loop.step.value == 3

    def test_natural_loop_matches_canonical(self):
        module = compile_source(
            "func main() { for i in 0..4 { for j in 0..4 { } } }"
        )
        loops = find_natural_loops(module.function("main"))
        assert len(loops) == 2
        assert all(loop.canonical is not None for loop in loops)
        inner = [loop for loop in loops if loop.parent is not None]
        assert len(inner) == 1

    def test_unreachable_code_after_return_is_sealed(self):
        module = compile_source(
            "func f() -> int { return 1; print(2); }\nfunc main() { }"
        )
        verify_module(module)

    def test_if_without_else(self):
        module = compile_source(
            "func main() { var x: int = 1; if (x > 0) { x = 2; } print(x); }"
        )
        verify_module(module)


class TestAnnotations:
    def test_region_blocks_are_sese(self):
        module = compile_source(
            "func main() {\n"
            "  pragma omp parallel\n"
            "  { var x: int = 1; print(x); }\n"
            "}"
        )
        function = module.function("main")
        (annotation,) = function.annotations
        assert annotation.directive.kind == "parallel"
        names = {b.name for b in function.blocks}
        assert set(annotation.block_names) <= names

    def test_nested_regions_record_parents(self):
        module = compile_source(
            "func main() {\n"
            "  pragma omp parallel\n"
            "  {\n"
            "    pragma omp for\n"
            "    for i in 0..4 { }\n"
            "  }\n"
            "}"
        )
        annotations = {
            a.directive.kind: a for a in module.function("main").annotations
        }
        assert annotations["for"].parent_uid == annotations["parallel"].uid

    def test_loop_header_recorded_for_worksharing(self):
        module = compile_source(
            "func main() { pragma omp for\nfor i in 0..4 { } }"
        )
        (annotation,) = module.function("main").annotations
        assert annotation.loop_header is not None
        assert annotation.loop_header in module.function("main").loop_info

    def test_clause_bindings_resolved(self):
        module = compile_source(
            "func main() {\n"
            "  var s: int = 0;\n"
            "  pragma omp for reduction(+: s)\n"
            "  for i in 0..4 { s = s + i; }\n"
            "  print(s);\n"
            "}"
        )
        (annotation,) = module.function("main").annotations
        binding = annotation.binding("s")
        assert binding.var_name == "s"

    def test_threadprivate_in_module_metadata(self):
        module = compile_source(
            "global t: int;\npragma omp threadprivate(t)\nfunc main() { }"
        )
        assert module.metadata["threadprivate"] == {"t"}

    def test_nested_pragma_region_containment(self):
        module = compile_source(
            "func main() {\n"
            "  pragma omp parallel\n"
            "  pragma omp for\n"
            "  for i in 0..4 { }\n"
            "}"
        )
        annotations = module.function("main").annotations
        by_kind = {a.directive.kind: a for a in annotations}
        assert set(by_kind["for"].block_names) < set(
            by_kind["parallel"].block_names
        )


class TestTypesAndCoercions:
    def test_int_to_float_promotion(self):
        module = compile_source(
            "func main() { var x: float = 1 + 2.5; print(x); }"
        )
        verify_module(module)

    def test_bool_condition_required(self):
        with pytest.raises(FrontendError):
            compile_source("func main() { if (1) { } }")

    def test_array_to_scalar_assignment_rejected(self):
        with pytest.raises(FrontendError):
            compile_source(
                "func main() { var a: int[3]; var x: int = 0; x = a; }"
            )

    def test_string_outside_print_rejected(self):
        with pytest.raises(FrontendError):
            compile_source('func main() { var x: int = "no"; }')

    def test_array_argument_passed_by_reference(self):
        module = compile_source(
            "func fill(a: int[4]) { a[0] = 7; }\n"
            "func main() { var a: int[4]; fill(a); print(a[0]); }"
        )
        verify_module(module)
