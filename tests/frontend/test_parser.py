"""MiniOMP parser: AST shapes and pragma parsing."""

import pytest

from repro.frontend import ast, parse_source
from repro.util.errors import FrontendError


def parse_main_body(body):
    program = parse_source("func main() {\n" + body + "\n}")
    return program.functions[0].body.statements


class TestDeclarations:
    def test_global_with_array_type(self):
        program = parse_source("global a: int[4][5];")
        decl = program.globals[0]
        assert decl.name == "a"
        assert decl.type.base == "int"
        assert decl.type.dims == [4, 5]

    def test_function_signature(self):
        program = parse_source(
            "func f(x: int, a: float[3]) -> float { return 1.0; }"
        )
        func = program.functions[0]
        assert [p.name for p in func.params] == ["x", "a"]
        assert func.return_type.base == "float"

    def test_default_return_type_is_void(self):
        program = parse_source("func f() { }")
        assert program.functions[0].return_type.base == "void"

    def test_threadprivate_pragma_marks_global(self):
        program = parse_source(
            "global t: int[8];\npragma omp threadprivate(t)\nfunc main() { }"
        )
        assert program.globals[0].threadprivate

    def test_threadprivate_for_unknown_global_rejected(self):
        with pytest.raises(FrontendError):
            parse_source("pragma omp threadprivate(nope)\nfunc main() { }")


class TestStatements:
    def test_for_with_step(self):
        (stmt,) = parse_main_body("for i in 0..10 step 2 { }")
        assert isinstance(stmt, ast.For)
        assert stmt.var == "i"
        assert isinstance(stmt.step, ast.IntLit)

    def test_else_if_chains(self):
        (stmt,) = parse_main_body(
            "if (1 < 2) { } else if (2 < 3) { } else { }"
        )
        assert isinstance(stmt, ast.If)
        nested = stmt.else_body.statements[0]
        assert isinstance(nested, ast.If)
        assert nested.else_body is not None

    def test_while(self):
        (stmt,) = parse_main_body("while (true) { }")
        assert isinstance(stmt, ast.While)

    def test_assignment_to_element(self):
        decl, assign = parse_main_body("var a: int[3];\na[1] = 5;")
        assert isinstance(assign, ast.Assign)
        assert isinstance(assign.target, ast.Index)

    def test_call_statement(self):
        program = parse_source(
            "func g() { }\nfunc main() { g(); }"
        )
        stmt = program.functions[1].body.statements[0]
        assert isinstance(stmt, ast.ExprStmt)

    def test_assignment_to_call_rejected(self):
        with pytest.raises(FrontendError):
            parse_main_body("f() = 3;")

    def test_print_with_label(self):
        (stmt,) = parse_main_body('print("x =", 1, 2);')
        assert isinstance(stmt, ast.PrintStmt)
        assert len(stmt.args) == 3


class TestExpressions:
    def test_precedence_mul_over_add(self):
        (stmt,) = parse_main_body("var x: int = 1 + 2 * 3;")
        expr = stmt.init
        assert isinstance(expr, ast.BinExpr) and expr.op == "+"
        assert isinstance(expr.rhs, ast.BinExpr) and expr.rhs.op == "*"

    def test_parentheses_override(self):
        (stmt,) = parse_main_body("var x: int = (1 + 2) * 3;")
        expr = stmt.init
        assert expr.op == "*"

    def test_logical_precedence(self):
        (stmt,) = parse_main_body("var x: bool = 1 < 2 && 3 < 4 || false;")
        expr = stmt.init
        assert expr.op == "||"
        assert expr.lhs.op == "&&"

    def test_unary_chains(self):
        (stmt,) = parse_main_body("var x: int = - - 3;")
        assert isinstance(stmt.init, ast.UnExpr)
        assert isinstance(stmt.init.operand, ast.UnExpr)

    def test_index_chains(self):
        decl, stmt = parse_main_body(
            "var a: int[2][2];\nvar x: int = a[0][1];"
        )
        index = stmt.init
        assert isinstance(index, ast.Index)
        assert isinstance(index.base, ast.Index)

    def test_cast_syntax(self):
        (stmt,) = parse_main_body("var x: int = int(3.5);")
        assert isinstance(stmt.init, ast.CallExpr)
        assert stmt.init.name == "int"


class TestPragmas:
    def test_parallel_for_merges_to_one_kind(self):
        (stmt,) = parse_main_body("pragma omp parallel for\nfor i in 0..4 { }")
        assert stmt.pragmas[0].kind == "parallel_for"

    def test_reduction_clause_parsed(self):
        body = parse_main_body(
            "var s: int = 0;\npragma omp for reduction(+: s) private(s)\n"
            "for i in 0..4 { }"
        )
        directive = body[1].pragmas[0]
        assert directive.clauses.reductions == [("+", "s")]
        assert directive.clauses.private == ["s"]

    def test_schedule_clause(self):
        body = parse_main_body(
            "pragma omp for schedule(static, 8)\nfor i in 0..4 { }"
        )
        assert body[0].pragmas[0].clauses.schedule == ("static", 8)

    def test_named_critical(self):
        body = parse_main_body(
            "pragma omp critical(lockname)\n{ }"
        )
        assert body[0].pragmas[0].clauses.critical_name == "lockname"

    def test_barrier_is_standalone(self):
        body = parse_main_body("pragma omp barrier\nvar x: int = 1;")
        assert isinstance(body[0], ast.StandaloneDirective)
        assert body[0].directive.kind == "barrier"
        assert isinstance(body[1], ast.VarDecl)

    def test_stacked_pragmas(self):
        body = parse_main_body(
            "pragma omp parallel\npragma omp for\nfor i in 0..4 { }"
        )
        kinds = [p.kind for p in body[0].pragmas]
        assert kinds == ["parallel", "for"]

    def test_depend_clause(self):
        body = parse_main_body(
            "var x: int = 0;\npragma omp task depend(out: x)\n{ }"
        )
        assert body[1].pragmas[0].clauses.depends == [("out", "x")]

    def test_unknown_directive_rejected(self):
        with pytest.raises(FrontendError):
            parse_main_body("pragma omp frobnicate\n{ }")

    def test_unknown_reduction_op_rejected(self):
        with pytest.raises(FrontendError):
            parse_main_body(
                "var s: int = 0;\npragma omp for reduction(@: s)\n"
                "for i in 0..4 { }"
            )


class TestCilk:
    def test_spawn_statement(self):
        program = parse_source(
            "func w(x: int) -> int { return x; }\n"
            "func main() { var r: int = 0; spawn r = w(1); sync; }"
        )
        body = program.functions[1].body.statements
        assert isinstance(body[1], ast.SpawnStmt)
        assert body[1].call.name == "w"
        assert isinstance(body[2], ast.StandaloneDirective)
        assert body[2].directive.kind == "cilk_sync"

    def test_cilk_for_attaches_directive(self):
        (stmt,) = parse_main_body("cilk_for i in 0..4 { }")
        assert stmt.pragmas[0].kind == "cilk_for"

    def test_reducer_declaration(self):
        (stmt,) = parse_main_body("var s: int reducer(+) = 0;")
        assert stmt.reducer_op == "+"

    def test_cilk_scope(self):
        (stmt,) = parse_main_body("cilk_scope { var x: int = 1; }")
        assert stmt.pragmas[0].kind == "cilk_scope"
