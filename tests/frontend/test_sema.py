"""Semantic checks: names, scopes, pragma placement."""

import pytest

from repro.frontend import check_program, parse_source
from repro.util.errors import FrontendError


def check(source):
    return check_program(parse_source(source))


class TestNames:
    def test_undeclared_variable_rejected(self):
        with pytest.raises(FrontendError):
            check("func main() { x = 1; }")

    def test_duplicate_local_rejected(self):
        with pytest.raises(FrontendError):
            check("func main() { var x: int = 1; var x: int = 2; }")

    def test_shadowing_in_inner_scope_allowed(self):
        check(
            "func main() { var x: int = 1; if (x > 0) { var x: int = 2; } }"
        )

    def test_duplicate_global_rejected(self):
        with pytest.raises(FrontendError):
            check("global g: int;\nglobal g: float;")

    def test_duplicate_function_rejected(self):
        with pytest.raises(FrontendError):
            check("func f() { }\nfunc f() { }")

    def test_builtin_shadowing_rejected(self):
        with pytest.raises(FrontendError):
            check("func sqrt() { }")

    def test_loop_variable_scoped_to_loop(self):
        with pytest.raises(FrontendError):
            check("func main() { for i in 0..4 { } print(i); }")

    def test_globals_visible_in_functions(self):
        check("global g: int;\nfunc main() { g = 3; }")


class TestCalls:
    def test_undeclared_function_rejected(self):
        with pytest.raises(FrontendError):
            check("func main() { nope(); }")

    def test_arity_mismatch_rejected(self):
        with pytest.raises(FrontendError):
            check("func f(x: int) { }\nfunc main() { f(); }")

    def test_forward_references_allowed(self):
        check("func main() { later(); }\nfunc later() { }")


class TestReturns:
    def test_void_function_returning_value_rejected(self):
        with pytest.raises(FrontendError):
            check("func f() { return 3; }")

    def test_nonvoid_function_returning_nothing_rejected(self):
        with pytest.raises(FrontendError):
            check("func f() -> int { return; }")


class TestPragmaPlacement:
    def test_worksharing_requires_for(self):
        with pytest.raises(FrontendError):
            check("func main() { pragma omp for\nvar x: int = 1; }")

    def test_clause_variable_must_be_declared(self):
        with pytest.raises(FrontendError):
            check(
                "func main() { pragma omp for private(ghost)\n"
                "for i in 0..4 { } }"
            )

    def test_loop_variable_usable_in_clause(self):
        check(
            "func main() { pragma omp for lastprivate(i)\n"
            "for i in 0..4 { } }"
        )

    def test_anyvalue_requires_scalar(self):
        with pytest.raises(FrontendError):
            check(
                "func main() { var a: int[3];\n"
                "pragma omp for anyvalue(a)\nfor i in 0..4 { } }"
            )

    def test_array_global_initializer_rejected(self):
        with pytest.raises(FrontendError):
            check("global a: int[3] = 1;")

    def test_threadprivate_recorded(self):
        info = check(
            "global t: int;\npragma omp threadprivate(t)\nfunc main() { }"
        )
        assert info.threadprivate == {"t"}
