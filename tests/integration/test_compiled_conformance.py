"""Differential conformance of the region-body compiler.

~50 seeded random programs (tests/support/progen) run compiled vs
interpreted; outputs must match exactly, and with ``VERIFY_COMPILED``
the in-worker oracle additionally diffs every chunk's write log, output
slice, and step count byte-for-byte between the compiled body and the
interpreter — so a passing run here is a per-chunk semantic equivalence
proof, not just an end-to-end output check.

The fallback tests pin the *never fail* contract: a region the lowering
refuses (wholly or partly) must still conform, silently, through the
interpreter.
"""

import pytest

from repro.codegen import cache as codegen_cache
from repro.codegen import lower
from repro.frontend import compile_source
from repro.ir.instructions import Print
from repro.runtime import knobs
from repro.runtime.executor import run_source_plan
from repro.session import Session
from support.conformance import outputs_close
from support.progen import generate_program

CASES = 50
PROCESS_CASES = 10  # pool dispatch is ~10x the threads cost per program


def _verify_on(monkeypatch):
    monkeypatch.setenv("VERIFY_COMPILED", "1")
    knobs.refresh()


@pytest.mark.parametrize("chunk", range(0, CASES, 10))
def test_progen_compiled_vs_interpreted_threads(chunk, monkeypatch):
    _verify_on(monkeypatch)
    for seed in range(chunk, min(chunk + 10, CASES)):
        source = generate_program(seed)
        baseline = run_source_plan(
            compile_source(source), backend="threads", seed=seed,
            compile_regions=False,
        )
        compiled = run_source_plan(
            compile_source(source), backend="threads", seed=seed,
            compile_regions=True,
        )
        assert outputs_close(compiled.output, baseline.output), (
            f"seed={seed}: compiled threads run diverged"
        )
        assert compiled.steps == baseline.steps, (
            f"seed={seed}: compiled step count diverged"
        )


@pytest.mark.parametrize("chunk", range(0, PROCESS_CASES, 5))
def test_progen_compiled_vs_interpreted_processes(chunk, monkeypatch):
    _verify_on(monkeypatch)
    for seed in range(chunk, min(chunk + 5, PROCESS_CASES)):
        source = generate_program(seed)
        baseline = run_source_plan(
            compile_source(source), backend="processes", seed=seed,
            compile_regions=False,
        )
        compiled = run_source_plan(
            compile_source(source), backend="processes", seed=seed,
            compile_regions=True,
        )
        assert outputs_close(compiled.output, baseline.output), (
            f"seed={seed}: compiled processes run diverged"
        )
        assert compiled.steps == baseline.steps, (
            f"seed={seed}: compiled step count diverged"
        )


def test_progen_planned_sessions_compile(monkeypatch):
    """Planned (PS-PDG) runs conform with compilation on, oracle armed."""
    _verify_on(monkeypatch)
    for seed in range(8):
        source = generate_program(seed)
        session = Session.from_source(
            source, name=f"progen-c-{seed}", backend="threads",
            compile_regions=True,
        )
        expected = session.execution.output
        result = session.run("PS-PDG", workers=3)
        assert outputs_close(result.output, expected), (
            f"seed={seed}: compiled planned run diverged"
        )


SUPPORTED = """
global a: int[24];
global trace: int;

func main() {
  pragma omp parallel_for
  for i in 0..24 {
    a[i] = i * i;
  }
  pragma omp parallel_for reduction(+: trace)
  for i in 0..24 {
    trace = trace + a[i];
    print("partial", a[i]);
  }
  print(trace);
}
"""


def test_compiled_chunks_actually_ran():
    baseline = run_source_plan(
        compile_source(SUPPORTED), backend="threads",
        compile_regions=False,
    )
    result = run_source_plan(
        compile_source(SUPPORTED), backend="threads",
        compile_regions=True,
    )
    assert result.output == baseline.output
    compiled = sum(
        region["compiled_chunks"] for region in result.parallel_regions
    )
    assert compiled > 0, "no chunk took the compiled path"
    assert all(
        region["interpreted_chunks"] == 0
        for region in result.parallel_regions
    )


def test_unsupported_instruction_falls_back_and_conforms(monkeypatch):
    """A loop the lowering refuses must run interpreted, bit-identical.

    Threads only: the refusal is injected by monkeypatching the
    lowering, which cannot reach the already-forked pool children of
    the processes backend (their un-patched lowering would just keep
    compiling — the fallback path itself is identical code in the
    child, exercised by the Bailout tests in tests/codegen).
    """
    backend = "threads"
    original = lower._Lowering.lower_instruction

    def refuse_prints(self, out, inst):
        if isinstance(inst, Print):
            raise lower.Unsupported("test: print refused")
        return original(self, out, inst)

    monkeypatch.setattr(
        lower._Lowering, "lower_instruction", refuse_prints
    )
    codegen_cache.reset()  # drop entries compiled before the patch
    baseline = run_source_plan(
        compile_source(SUPPORTED), backend=backend, compile_regions=False,
    )
    result = run_source_plan(
        compile_source(SUPPORTED), backend=backend, compile_regions=True,
    )
    assert result.output == baseline.output
    assert result.steps == baseline.steps
    interpreted = sum(
        region["interpreted_chunks"] for region in result.parallel_regions
    )
    compiled = sum(
        region["compiled_chunks"] for region in result.parallel_regions
    )
    # First loop (no print) still compiles; the print loop falls back.
    assert interpreted > 0, "refused loop did not fall back"
    assert compiled > 0, "supported loop lost its compiled path"


def test_whole_codegen_failure_still_conforms(monkeypatch):
    """Even a crashing lowering must never take down a run."""

    def explode(loop, logged, module_key=None):
        raise RuntimeError("synthetic codegen bug")

    monkeypatch.setattr(codegen_cache, "compile_chunk", explode)
    codegen_cache.reset()
    baseline = run_source_plan(
        compile_source(SUPPORTED), backend="threads",
        compile_regions=False,
    )
    result = run_source_plan(
        compile_source(SUPPORTED), backend="threads",
        compile_regions=True,
    )
    assert result.output == baseline.output
    assert all(
        region["compiled_chunks"] == 0
        for region in result.parallel_regions
    )
