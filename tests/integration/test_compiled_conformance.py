"""Differential conformance of the region-body compiler.

~50 seeded random programs (tests/support/progen) run compiled vs
interpreted; outputs must match exactly, and with ``VERIFY_COMPILED``
the in-worker oracle additionally diffs every chunk's write log, output
slice, and step count byte-for-byte between the compiled body and the
interpreter — so a passing run here is a per-chunk semantic equivalence
proof, not just an end-to-end output check.

The fallback tests pin the *never fail* contract: a region the lowering
refuses (wholly or partly) must still conform, silently, through the
interpreter.
"""

import pytest

from repro.codegen import cache as codegen_cache
from repro.codegen import lower
from repro.frontend import compile_source
from repro.ir.instructions import Print
from repro.runtime import knobs
from repro.runtime.executor import run_source_plan
from repro.session import Session
from support.conformance import outputs_close
from support.progen import generate_program

CASES = 50
PROCESS_CASES = 10  # pool dispatch is ~10x the threads cost per program


def _verify_on(monkeypatch):
    monkeypatch.setenv("VERIFY_COMPILED", "1")
    knobs.refresh()


@pytest.mark.parametrize("chunk", range(0, CASES, 10))
def test_progen_compiled_vs_interpreted_threads(chunk, monkeypatch):
    _verify_on(monkeypatch)
    for seed in range(chunk, min(chunk + 10, CASES)):
        source = generate_program(seed)
        baseline = run_source_plan(
            compile_source(source), backend="threads", seed=seed,
            compile_regions=False,
        )
        compiled = run_source_plan(
            compile_source(source), backend="threads", seed=seed,
            compile_regions=True,
        )
        assert outputs_close(compiled.output, baseline.output), (
            f"seed={seed}: compiled threads run diverged"
        )
        assert compiled.steps == baseline.steps, (
            f"seed={seed}: compiled step count diverged"
        )


@pytest.mark.parametrize("chunk", range(0, PROCESS_CASES, 5))
def test_progen_compiled_vs_interpreted_processes(chunk, monkeypatch):
    _verify_on(monkeypatch)
    for seed in range(chunk, min(chunk + 5, PROCESS_CASES)):
        source = generate_program(seed)
        baseline = run_source_plan(
            compile_source(source), backend="processes", seed=seed,
            compile_regions=False,
        )
        compiled = run_source_plan(
            compile_source(source), backend="processes", seed=seed,
            compile_regions=True,
        )
        assert outputs_close(compiled.output, baseline.output), (
            f"seed={seed}: compiled processes run diverged"
        )
        assert compiled.steps == baseline.steps, (
            f"seed={seed}: compiled step count diverged"
        )


def test_progen_planned_sessions_compile(monkeypatch):
    """Planned (PS-PDG) runs conform with compilation on, oracle armed."""
    _verify_on(monkeypatch)
    for seed in range(8):
        source = generate_program(seed)
        session = Session.from_source(
            source, name=f"progen-c-{seed}", backend="threads",
            compile_regions=True,
        )
        expected = session.execution.output
        result = session.run("PS-PDG", workers=3)
        assert outputs_close(result.output, expected), (
            f"seed={seed}: compiled planned run diverged"
        )


SUPPORTED = """
global a: int[24];
global trace: int;

func main() {
  pragma omp parallel_for
  for i in 0..24 {
    a[i] = i * i;
  }
  pragma omp parallel_for reduction(+: trace)
  for i in 0..24 {
    trace = trace + a[i];
    print("partial", a[i]);
  }
  print(trace);
}
"""


def test_compiled_chunks_actually_ran():
    baseline = run_source_plan(
        compile_source(SUPPORTED), backend="threads",
        compile_regions=False,
    )
    result = run_source_plan(
        compile_source(SUPPORTED), backend="threads",
        compile_regions=True,
    )
    assert result.output == baseline.output
    compiled = sum(
        region["compiled_chunks"] for region in result.parallel_regions
    )
    assert compiled > 0, "no chunk took the compiled path"
    assert all(
        region["interpreted_chunks"] == 0
        for region in result.parallel_regions
    )


def test_unsupported_instruction_falls_back_and_conforms(monkeypatch):
    """A loop the lowering refuses must run interpreted, bit-identical.

    Threads only: the refusal is injected by monkeypatching the
    lowering, which cannot reach the already-forked pool children of
    the processes backend (their un-patched lowering would just keep
    compiling — the fallback path itself is identical code in the
    child, exercised by the Bailout tests in tests/codegen).
    """
    backend = "threads"
    original = lower._Lowering.lower_instruction

    def refuse_prints(self, out, inst):
        if isinstance(inst, Print):
            raise lower.Unsupported("test: print refused")
        return original(self, out, inst)

    monkeypatch.setattr(
        lower._Lowering, "lower_instruction", refuse_prints
    )
    codegen_cache.reset()  # drop entries compiled before the patch
    baseline = run_source_plan(
        compile_source(SUPPORTED), backend=backend, compile_regions=False,
    )
    result = run_source_plan(
        compile_source(SUPPORTED), backend=backend, compile_regions=True,
    )
    assert result.output == baseline.output
    assert result.steps == baseline.steps
    interpreted = sum(
        region["interpreted_chunks"] for region in result.parallel_regions
    )
    compiled = sum(
        region["compiled_chunks"] for region in result.parallel_regions
    )
    # First loop (no print) still compiles; the print loop falls back.
    assert interpreted > 0, "refused loop did not fall back"
    assert compiled > 0, "supported loop lost its compiled path"


def test_whole_codegen_failure_still_conforms(monkeypatch):
    """Even a crashing lowering must never take down a run."""

    def explode(loop, logged, module_key=None):
        raise RuntimeError("synthetic codegen bug")

    monkeypatch.setattr(codegen_cache, "compile_chunk", explode)
    codegen_cache.reset()
    baseline = run_source_plan(
        compile_source(SUPPORTED), backend="threads",
        compile_regions=False,
    )
    result = run_source_plan(
        compile_source(SUPPORTED), backend="threads",
        compile_regions=True,
    )
    assert result.output == baseline.output
    assert all(
        region["compiled_chunks"] == 0
        for region in result.parallel_regions
    )


# -- sequential stretches --------------------------------------------------------


def _verify_off(monkeypatch):
    monkeypatch.delenv("VERIFY_COMPILED", raising=False)
    knobs.refresh()


STRETCHY = """
global a: float[48];
global total: float;

func scale(x: float) -> float {
  return x * 1.5 + 0.25;
}

func main() {
  var warm: float = 0.0;
  for i in 0..16 {
    warm = warm + scale(float(i));
  }
  pragma omp parallel_for
  for i in 0..48 {
    a[i] = scale(float(i)) + warm;
  }
  pragma omp parallel_for reduction(+: total)
  for i in 0..48 {
    total = total + a[i];
  }
  for i in 0..4 {
    print("tail", a[i * 12]);
  }
  print(total);
}
"""


@pytest.mark.parametrize("backend", ["simulated", "threads", "processes"])
def test_sequential_stretches_compile_and_conform(backend, monkeypatch):
    """The code *between* regions runs compiled, interpreter-exact."""
    _verify_off(monkeypatch)
    baseline = run_source_plan(
        compile_source(STRETCHY), backend=backend, compile_regions=False,
    )
    compiled = run_source_plan(
        compile_source(STRETCHY), backend=backend, compile_regions=True,
    )
    assert compiled.output == baseline.output
    assert compiled.steps == baseline.steps
    # main's stretches plus every scale() call took the compiled path.
    assert compiled.sequence_stats["compiled"] > 0
    assert compiled.sequence_stats["interpreted"] == 0
    assert baseline.sequence_stats == {"compiled": 0, "interpreted": 0}


@pytest.mark.parametrize("chunk", range(0, CASES, 10))
def test_progen_sequential_stretches_fuzz(chunk, monkeypatch):
    """Whole-program compilation (stretches + chunks), no verify gate.

    VERIFY_COMPILED keeps functions with region stops interpreted (the
    oracle cannot replay a parallel dispatch), so this sweep runs with
    the oracle off to drive progen mains through the sequence compiler.
    """
    _verify_off(monkeypatch)
    compiled_runs = 0
    for seed in range(chunk, min(chunk + 10, CASES)):
        source = generate_program(seed)
        baseline = run_source_plan(
            compile_source(source), backend="threads", seed=seed,
            compile_regions=False,
        )
        result = run_source_plan(
            compile_source(source), backend="threads", seed=seed,
            compile_regions=True,
        )
        assert outputs_close(result.output, baseline.output), (
            f"seed={seed}: compiled whole-program run diverged"
        )
        assert result.steps == baseline.steps, (
            f"seed={seed}: compiled step count diverged"
        )
        compiled_runs += result.sequence_stats.get("compiled", 0)
    assert compiled_runs > 0, "no program took the sequence-compiled path"


# -- guard hoisting --------------------------------------------------------------


OOB = """
global a: int[32];

func main() {
  pragma omp parallel_for
  for i in 0..40 {
    a[i] = i * 2;
  }
  print(a[31]);
}
"""


@pytest.mark.parametrize("backend", ["simulated", "threads"])
def test_out_of_bounds_raises_exact_interpreter_error(backend, monkeypatch):
    """The hoisted fast path must never swallow a real bounds error.

    The chunk compiler proves bounds for the whole chunk up front; when
    the proof fails, the guarded fallback raises the interpreter's
    exact message at the exact iteration.
    """
    from repro.emulator.interp import run_module
    from repro.util.errors import EmulationError

    _verify_off(monkeypatch)
    with pytest.raises(EmulationError) as interpreted:
        run_module(compile_source(OOB))
    with pytest.raises(EmulationError) as compiled:
        run_source_plan(
            compile_source(OOB), backend=backend, compile_regions=True,
        )
    assert str(compiled.value) == str(interpreted.value)
    assert "out of bounds" in str(compiled.value)


# -- chunk accounting ------------------------------------------------------------


def test_chunk_accounting_conforms_across_backends(monkeypatch):
    """compiled/interpreted chunk counts agree on every backend.

    The processes backend ships its counts back from the pool children
    in the worker result dict; this pins that they arrive and match the
    in-process backends.
    """
    _verify_off(monkeypatch)
    counts = {}
    for backend in ("simulated", "threads", "processes"):
        result = run_source_plan(
            compile_source(SUPPORTED), backend=backend,
            compile_regions=True,
        )
        counts[backend] = (
            sum(r["compiled_chunks"] for r in result.parallel_regions),
            sum(r["interpreted_chunks"] for r in result.parallel_regions),
            dict(result.sequence_stats),
        )
    assert counts["threads"] == counts["processes"]
    compiled_chunks, interpreted_chunks, sequence_stats = counts["threads"]
    assert compiled_chunks > 0 and interpreted_chunks == 0
    assert sequence_stats == {"compiled": 1, "interpreted": 0}
    # The simulated backend interleaves instructions one at a time (the
    # race oracle) and never takes chunk bodies through codegen — but
    # the sequential stretches around the regions still compile.
    assert counts["simulated"][0] == 0
    assert counts["simulated"][2] == sequence_stats


# -- the source cache across pool recycles ---------------------------------------


def test_pool_recycle_relowers_nothing(monkeypatch):
    """Fresh pool children after a recycle rebuild from cached source.

    The parent merges every child lowering into its source cache
    (``drain_new_sources``/``merge_sources``); the next generation of
    forked children inherits it, so re-running the same content after a
    recycle must report source hits and zero fresh compiles.
    """
    from repro.runtime import backends

    # Content no other test runs, so the long-lived pool children can't
    # serve it from their per-epoch caches before this test starts.
    recycled = SUPPORTED.replace("i * i", "i * i + 3")
    _verify_off(monkeypatch)
    codegen_cache.reset()
    first = run_source_plan(
        compile_source(recycled), backend="processes",
        compile_regions=True,
    )
    assert sum(r["codegen_compiles"] for r in first.parallel_regions) > 0
    # Exhaust the region budget so the next dispatch forks a fresh pool.
    monkeypatch.setattr(backends, "POOL_RECYCLE_REGIONS", 1)
    before = codegen_cache.stats()
    second = run_source_plan(
        compile_source(recycled), backend="processes",
        compile_regions=True,
    )
    after = codegen_cache.stats()
    assert second.output == first.output
    assert sum(r["codegen_compiles"] for r in second.parallel_regions) == 0
    assert sum(r["codegen_source_hits"] for r in second.parallel_regions) > 0
    # The parent side (sequence entries included) re-lowered nothing
    # either: every rebuild came from the content-hash source layer.
    assert after["compiles"] == before["compiles"]
