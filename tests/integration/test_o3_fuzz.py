"""-O3 vs -O0 differential fuzzing over generated nest programs.

Seeded nest-heavy programs (tests/support/progen's
``generate_nest_program``) run through the full ``-O3`` pipeline — the
three nest shapes exercise conclusive interchange, conclusive rejection,
and oracle-validated speculation — and every optimized plan must
reproduce both the sequential output and the unoptimized ``-O0`` plan's
output on a real backend.  Running on ``threads``/``processes`` also
proves no still-speculative region ever leaks past the oracle gate (the
runtime raises for those).  A failing seed reproduces with
``generate_nest_program(seed)`` alone.
"""

import pytest

from repro.opt import OptLevel, optimize_plan
from repro.planner.plans import openmp_source_plan
from repro.runtime import run_plan
from repro.session import Session
from support.conformance import outputs_close
from support.progen import generate_nest_program

CASES = 40


def _optimized(session, level):
    plan = openmp_source_plan(session.function)
    return optimize_plan(
        session.function, session.module, session.pdg, session.pspdg,
        plan, level, loops=session.loops,
    )


@pytest.mark.parametrize("chunk", range(0, CASES, 10))
def test_o3_matches_o0_on_generated_nests(chunk):
    for seed in range(chunk, min(chunk + 10, CASES)):
        source = generate_nest_program(seed)
        session = Session.from_source(source, name=f"nest-{seed}")
        expected = session.execution.output
        o0 = _optimized(session, OptLevel.O0)
        o3 = _optimized(session, OptLevel.O3)
        backend = "threads" if seed % 2 else "processes"
        for label, plan in (("-O0", o0.plan), ("-O3", o3.plan)):
            result = run_plan(
                session.module, session.pspdg, plan,
                workers=3, seed=seed % 5, backend=backend,
            )
            assert outputs_close(result.output, expected), (
                f"seed={seed} {label} on {backend} diverged: "
                f"{result.output} != {expected}"
            )


def test_the_corpus_exercises_every_interchange_verdict():
    """The fuzz leg is not vacuous: across the pinned seeds the -O3
    pipeline must conclusively interchange some nests, conclusively
    reject others, and validate some speculations — otherwise the corpus
    (or a legality predicate) has silently degenerated."""
    interchanged = speculated = rejected = 0
    for seed in range(CASES):
        source = generate_nest_program(seed)
        session = Session.from_source(source, name=f"nest-{seed}")
        report = _optimized(session, OptLevel.O3).report
        summary = report.summary()
        interchanged += summary["interchanged"]
        speculated += summary["speculated"]
        rejected += sum(
            1 for name, _subject, _reason in report.rejected
            if name == "loop-interchange"
        )
    assert interchanged > 0, "no nest ever interchanged conclusively"
    assert speculated > 0, "no nest ever speculated"
    assert rejected > 0, "no nest was ever rejected"
