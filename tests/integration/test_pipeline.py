"""End-to-end pipeline tests: source -> IR -> PDG -> PS-PDG -> plan -> run."""

from repro.core import build_pspdg
from repro.emulator import run_module
from repro.frontend import compile_source
from repro.ir import print_module, verify_module
from repro.pdg import build_pdg
from repro.planner import (
    fig13_options,
    fig14_critical_paths,
    prepare_benchmark,
)
from repro.runtime import run_source_plan

PROGRAM = """
global data: int[96];
global buckets: int[12];

func classify(value: int) -> int {
  return (value * 7 + 3) % 12;
}

func main() {
  for s in 0..96 {
    data[s] = (s * 31 + 17) % 101;
  }
  var total: int = 0;
  pragma omp parallel
  {
    pragma omp for
    for i in 0..96 {
      var b: int = classify(data[i]);
      pragma omp critical
      { buckets[b] = buckets[b] + 1; }
    }
    pragma omp for reduction(+: total)
    for j in 0..12 {
      total = total + buckets[j] * buckets[j];
    }
  }
  print("total", total);
}
"""


def test_full_pipeline_produces_consistent_artifacts():
    module = compile_source(PROGRAM)
    verify_module(module)
    function = module.function("main")

    pdg = build_pdg(function, module)
    assert pdg.edge_count() > 0

    pspdg = build_pspdg(function, module)
    stats = pspdg.statistics()
    assert stats["undirected_edges"] >= 1  # the critical
    assert stats["reducible"] == 1  # total
    assert stats["relaxations"] > 0

    result = run_module(module)
    assert result.formatted_output()


def test_pretty_printer_covers_annotations():
    module = compile_source(PROGRAM)
    text = print_module(module)
    assert "omp for" in text
    assert "omp critical" in text
    assert "loop for.header" in text


def test_experiments_agree_with_runtime_validation():
    module = compile_source(PROGRAM)
    setup = prepare_benchmark("integration", module)

    report = fig13_options(setup)
    assert report.totals["PS-PDG"] >= report.totals["OpenMP"]

    results = fig14_critical_paths(setup)
    assert results["PS-PDG"]["speedup"] >= 1.0

    # The source plan executes correctly on the simulated machine.
    sequential = run_module(compile_source(PROGRAM)).formatted_output()
    for seed in (0, 3):
        parallel = run_source_plan(
            compile_source(PROGRAM), workers=4, seed=seed
        )
        assert parallel.formatted_output() == sequential


def test_plans_are_reported_with_techniques():
    module = compile_source(PROGRAM)
    setup = prepare_benchmark("integration", module)
    results = fig14_critical_paths(setup)
    plan = results["PS-PDG"]["plan"]
    description = plan.describe()
    assert "plan PS-PDG" in description
    techniques = {lp.technique for lp in plan.loop_plans.values()}
    assert techniques <= {"DOALL", "HELIX", "DSWP", "SEQ"}


def test_interpreter_profile_feeds_planner():
    module = compile_source(PROGRAM)
    setup = prepare_benchmark("integration", module)
    assert setup.profile.total() == setup.execution.steps
    assert setup.profile.loop_instances()
