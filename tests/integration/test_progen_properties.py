"""Property tests over seeded random programs (tests/support/progen).

~200 seed-pinned cases each: the frontend->IR->printer->parser loop is
stable and semantics-preserving, and ``Session.plan()`` never crashes on
a generated module.  A failing seed reproduces with
``generate_program(seed)`` alone.
"""

import pytest

from repro.emulator import run_module
from repro.frontend import compile_source
from repro.ir import parse_ir, print_module
from repro.session import Session
from support.progen import generate_program

CASES = 200
# Planning runs the full pipeline per program; keep a cheaper subset so
# the property suite stays inside a few seconds.
PLAN_CASES = 60


@pytest.mark.parametrize("chunk", range(0, CASES, 25))
def test_parser_printer_roundtrip_stable(chunk):
    for seed in range(chunk, min(chunk + 25, CASES)):
        source = generate_program(seed)
        module = compile_source(source, f"progen-{seed}")
        text = print_module(module)
        reparsed = parse_ir(text)
        normalized = print_module(reparsed)
        # Idempotent after one normalization pass...
        assert print_module(parse_ir(normalized)) == normalized, (
            f"seed={seed}: printer/parser loop is not stable"
        )
        # ...and semantics-preserving.
        assert (
            run_module(reparsed).output == run_module(module).output
        ), f"seed={seed}: reparsed module diverges"


@pytest.mark.parametrize("chunk", range(0, PLAN_CASES, 20))
def test_plan_never_crashes(chunk):
    for seed in range(chunk, min(chunk + 20, PLAN_CASES)):
        source = generate_program(seed)
        session = Session.from_source(source, name=f"progen-{seed}")
        plan = session.plan("PS-PDG")
        assert plan is not None, f"seed={seed}"
        # The chosen plan must also *execute* conformantly on the oracle.
        expected = session.execution.output
        result = session.run(plan, workers=3, seed=seed % 5)
        from support.conformance import outputs_close

        assert outputs_close(result.output, expected), (
            f"seed={seed}: planned execution diverged: "
            f"{result.output} != {expected}"
        )
