"""Function/module structure and verifier invariants."""

import pytest

from repro.ir import (
    INT,
    Function,
    IRBuilder,
    Module,
    verify_function,
    verify_module,
)
from repro.util.errors import IRError, VerificationError


def _terminated_function():
    function = Function("f")
    builder = IRBuilder(function.create_block("entry"))
    builder.ret()
    return function, builder


class TestFunctionStructure:
    def test_block_names_are_uniquified(self):
        function = Function("f")
        a = function.create_block("x")
        b = function.create_block("x")
        assert a.name == "x"
        assert b.name == "x.1"

    def test_block_lookup(self):
        function = Function("f")
        block = function.create_block("here")
        assert function.block("here") is block
        with pytest.raises(IRError):
            function.block("missing")

    def test_entry_is_first_block(self):
        function = Function("f")
        entry = function.create_block("entry")
        function.create_block("later")
        assert function.entry is entry

    def test_uids_are_unique_and_ordered(self):
        function, builder = _terminated_function()
        uids = [inst.uid for inst in function.instructions()]
        assert len(uids) == len(set(uids))

    def test_append_after_terminator_rejected(self):
        function, builder = _terminated_function()
        with pytest.raises(IRError):
            builder.ret()

    def test_duplicate_function_rejected(self):
        module = Module()
        module.create_function("f")
        with pytest.raises(IRError):
            module.create_function("f")

    def test_duplicate_global_rejected(self):
        module = Module()
        module.add_global("g", INT)
        with pytest.raises(IRError):
            module.add_global("g", INT)


class TestVerifier:
    def test_accepts_wellformed(self):
        function, _ = _terminated_function()
        verify_function(function)

    def test_rejects_unterminated_block(self):
        function = Function("f")
        builder = IRBuilder(function.create_block("entry"))
        builder.alloca(INT, "x")
        with pytest.raises(VerificationError):
            verify_function(function)

    def test_rejects_empty_function(self):
        with pytest.raises(VerificationError):
            verify_function(Function("f"))

    def test_rejects_use_before_def_in_block(self):
        function = Function("f")
        block = function.create_block("entry")
        builder = IRBuilder(block)
        slot = builder.alloca(INT, "x")
        value = builder.load(slot)
        builder.ret()
        # Manually move the load before its alloca.
        block.instructions[0], block.instructions[1] = (
            block.instructions[1],
            block.instructions[0],
        )
        with pytest.raises(VerificationError):
            verify_function(function)

    def test_rejects_branch_to_foreign_block(self):
        f1 = Function("f1")
        f2 = Function("f2")
        foreign = f2.create_block("there")
        builder = IRBuilder(f1.create_block("entry"))
        builder.jump(foreign)
        with pytest.raises(VerificationError):
            verify_function(f1)

    def test_rejects_call_to_foreign_function(self):
        module_a = Module()
        callee = module_a.create_function("g")
        IRBuilder(callee.create_block("entry")).ret()

        module_b = Module()
        caller = module_b.create_function("f")
        builder = IRBuilder(caller.create_block("entry"))
        builder.call(callee, [])
        builder.ret()
        with pytest.raises(VerificationError):
            verify_module(module_b)

    def test_verify_module_covers_all_functions(self):
        module = Module()
        good = module.create_function("good")
        IRBuilder(good.create_block("entry")).ret()
        bad = module.create_function("bad")
        bad.create_block("entry")  # left unterminated
        with pytest.raises(VerificationError):
            verify_module(module)
