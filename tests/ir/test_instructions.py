"""Instruction construction and typing rules."""

import pytest

from repro.ir import (
    BOOL,
    FLOAT,
    INT,
    ArrayType,
    Function,
    IRBuilder,
    Module,
    const_bool,
    const_float,
    const_int,
)
from repro.ir.instructions import (
    BinaryOp,
    Branch,
    Compare,
    GetElementPtr,
    Load,
    Select,
    Store,
    UnaryOp,
)
from repro.util.errors import IRError


@pytest.fixture
def builder():
    function = Function("f")
    return IRBuilder(function.create_block("entry"))


class TestBinaryOps:
    def test_result_type_matches_operands(self, builder):
        v = builder.add(builder.int(1), builder.int(2))
        assert v.type == INT
        w = builder.binop("mul", builder.float(1.5), builder.float(2.0))
        assert w.type == FLOAT

    def test_mixed_types_rejected(self, builder):
        with pytest.raises(IRError):
            BinaryOp("add", const_int(1), const_float(1.0))

    def test_int_only_ops_reject_floats(self):
        with pytest.raises(IRError):
            BinaryOp("rem", const_float(1.0), const_float(2.0))
        with pytest.raises(IRError):
            BinaryOp("xor", const_float(1.0), const_float(2.0))

    def test_unknown_op_rejected(self):
        with pytest.raises(IRError):
            BinaryOp("bogus", const_int(1), const_int(2))


class TestUnaryOps:
    def test_float_only_ops_reject_ints(self):
        with pytest.raises(IRError):
            UnaryOp("sqrt", const_int(4))

    def test_neg_preserves_type(self, builder):
        assert builder.neg(builder.float(1.0)).type == FLOAT
        assert builder.neg(builder.int(1)).type == INT

    def test_not_requires_int_or_bool(self):
        assert UnaryOp("not", const_bool(True)).type == BOOL
        with pytest.raises(IRError):
            UnaryOp("not", const_float(1.0))


class TestCompare:
    def test_produces_bool(self, builder):
        assert builder.cmp("lt", builder.int(1), builder.int(2)).type == BOOL

    def test_mismatched_operands_rejected(self):
        with pytest.raises(IRError):
            Compare("eq", const_int(1), const_float(1.0))

    def test_unknown_predicate_rejected(self):
        with pytest.raises(IRError):
            Compare("spaceship", const_int(1), const_int(2))


class TestMemory:
    def test_load_requires_pointer(self):
        with pytest.raises(IRError):
            Load(const_int(3))

    def test_store_requires_pointer(self):
        with pytest.raises(IRError):
            Store(const_int(3), const_int(4))

    def test_load_type_is_pointee(self, builder):
        slot = builder.alloca(FLOAT, "x")
        assert builder.load(slot).type == FLOAT

    def test_gep_requires_pointer_to_array(self, builder):
        scalar = builder.alloca(INT, "x")
        with pytest.raises(IRError):
            GetElementPtr(scalar, const_int(0))

    def test_gep_peels_one_dimension(self, builder):
        matrix = builder.alloca(ArrayType(ArrayType(INT, 4), 3), "m")
        row = builder.gep(matrix, builder.int(1))
        assert row.type.pointee == ArrayType(INT, 4)
        element = builder.gep(row, builder.int(2))
        assert element.type.pointee == INT

    def test_memory_classification(self, builder):
        slot = builder.alloca(INT, "x")
        load = builder.load(slot)
        store = builder.store(builder.int(1), slot)
        assert load.reads_memory() and not load.writes_memory()
        assert store.writes_memory() and not store.reads_memory()
        assert store.has_side_effects()


class TestSelectAndBranch:
    def test_select_requires_bool_condition(self):
        with pytest.raises(IRError):
            Select(const_int(1), const_int(2), const_int(3))

    def test_select_arms_must_match(self):
        with pytest.raises(IRError):
            Select(const_bool(True), const_int(1), const_float(1.0))

    def test_branch_requires_bool(self):
        function = Function("f")
        b1 = function.create_block("a")
        b2 = function.create_block("b")
        with pytest.raises(IRError):
            Branch(const_int(1), b1, b2)

    def test_terminator_successors(self, builder):
        function = builder.function
        target = function.create_block("next")
        jump = builder.jump(target)
        assert jump.successors() == [target]


class TestCalls:
    def test_call_checks_argument_types(self):
        module = Module()
        callee = module.create_function("g", [INT], ["x"], INT)
        caller = module.create_function("f")
        builder = IRBuilder(caller.create_block("entry"))
        with pytest.raises(IRError):
            builder.call(callee, [builder.float(1.0)])

    def test_call_result_type(self):
        module = Module()
        callee = module.create_function("g", [INT], ["x"], FLOAT)
        caller = module.create_function("f")
        builder = IRBuilder(caller.create_block("entry"))
        assert builder.call(callee, [builder.int(1)]).type == FLOAT
