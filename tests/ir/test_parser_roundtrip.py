"""Textual IR round-trip: parse(print(module)) is semantics-preserving.

The printer/parser pair normalizes value numbering, so the test for
syntactic stability is idempotence after one normalization; semantic
equivalence is checked by interpreting both modules.
"""

import pytest

from repro.emulator import run_module
from repro.frontend import compile_source
from repro.ir import parse_ir, print_module, verify_module

PROGRAMS = {
    "straightline": "func main() { var x: int = 3; print(x * 2 + 1); }",
    "branches": (
        "func main() { var x: int = 5;\n"
        "if (x > 2) { print(1); } else { print(2); }\n"
        "if (x > 9) { print(3); } }"
    ),
    "loops": (
        "global a: int[8];\n"
        "func main() { var s: int = 0;\n"
        "for i in 0..8 { a[i] = i * i; s = s + a[i]; }\nprint(s); }"
    ),
    "floats": (
        "func main() { var f: float = 1.5;\n"
        "print(sqrt(f * f), floor(f), f / 2.0); }"
    ),
    "calls": (
        "func square(x: int) -> int { return x * x; }\n"
        "func main() { print(square(7), square(2)); }"
    ),
    "arrays2d": (
        "global m: float[3][3];\n"
        "func main() { for i in 0..3 { for j in 0..3 {\n"
        "m[i][j] = float(i) + float(j) * 0.5; } }\nprint(m[2][1]); }"
    ),
    "labels": 'func main() { print("answer", 42); }',
    "bools_selects": (
        "func main() { var x: int = 3;\n"
        "print(x > 1 && x < 5, x > 1 || x > 9); }"
    ),
    "while": (
        "func main() { var x: int = 1;\n"
        "while (x < 50) { x = x * 3; } print(x); }"
    ),
    "recursion": (
        "func fact(n: int) -> int {\n"
        "  if (n < 2) { return 1; }\n"
        "  return n * fact(n - 1);\n"
        "}\nfunc main() { print(fact(6)); }"
    ),
}


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_roundtrip_preserves_semantics(name):
    module = compile_source(PROGRAMS[name])
    expected = run_module(module).formatted_output()

    reparsed = parse_ir(print_module(module))
    verify_module(reparsed)
    assert run_module(reparsed).formatted_output() == expected


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_normalized_text_is_stable(name):
    module = compile_source(PROGRAMS[name])
    once = print_module(parse_ir(print_module(module)))
    twice = print_module(parse_ir(once))
    assert once == twice


def test_global_initializers_roundtrip():
    module = compile_source(
        "global g: int = 11;\nfunc main() { print(g); }"
    )
    reparsed = parse_ir(print_module(module))
    assert reparsed.globals["g"].initializer == 11


def test_parse_rejects_garbage():
    from repro.util.errors import IRError

    with pytest.raises(IRError):
        parse_ir("this is not ir")


def test_parse_rejects_undefined_value():
    from repro.util.errors import IRError

    text = (
        "func @main() -> void {\n"
        "entry:\n"
        "  print %99\n"
        "  return\n"
        "}"
    )
    with pytest.raises(IRError):
        parse_ir(text)
