"""IR pretty-printer golden checks."""

from repro.frontend import compile_source
from repro.ir import dump, print_function, print_module


def test_function_rendering_contains_blocks_and_instructions():
    module = compile_source(
        "func main() { var x: int = 3; print(x); }"
    )
    text = print_function(module.function("main"))
    assert text.splitlines()[0].startswith("func @main(")
    assert "entry:" in text
    assert "alloca int ; x" in text
    assert "store 3," in text
    assert text.rstrip().endswith("}")


def test_module_rendering_lists_globals():
    module = compile_source(
        "global g: int = 4;\nglobal a: float[3];\nfunc main() { }"
    )
    text = print_module(module)
    assert "global @g: int = 4" in text
    assert "global @a: [3 x float]" in text


def test_loop_metadata_rendered():
    module = compile_source("func main() { for i in 0..5 { } }")
    text = print_function(module.function("main"))
    assert "; loop for.header:" in text
    assert "upper=5" in text


def test_annotations_rendered():
    module = compile_source(
        "func main() { pragma omp parallel\n{ print(1); } }"
    )
    text = print_function(module.function("main"))
    assert "; region omp0: omp parallel" in text


def test_signature_with_params():
    module = compile_source("func f(x: int, a: int[2]) { }\nfunc main() { }")
    text = print_function(module.function("f"))
    assert "%x: int" in text
    assert "%a: [2 x int]*" in text


def test_dump_returns_text(capsys):
    module = compile_source("func main() { }")
    text = dump(module)
    captured = capsys.readouterr()
    assert text in captured.out
