"""IR type system: slots, equality, constructors."""

import pytest

from repro.ir import (
    BOOL,
    FLOAT,
    INT,
    VOID,
    ArrayType,
    PointerType,
    array_of,
    pointer_to,
)


def test_scalar_slots():
    assert INT.slots() == 1
    assert FLOAT.slots() == 1
    assert BOOL.slots() == 1
    assert VOID.slots() == 0


def test_scalar_predicates():
    assert INT.is_scalar()
    assert not VOID.is_scalar()
    assert not ArrayType(INT, 3).is_scalar()


def test_array_slots_multiply():
    assert ArrayType(INT, 10).slots() == 10
    assert ArrayType(ArrayType(FLOAT, 4), 3).slots() == 12


def test_zero_length_array_allowed():
    assert ArrayType(INT, 0).slots() == 0


def test_negative_array_count_rejected():
    with pytest.raises(ValueError):
        ArrayType(INT, -1)


def test_type_equality_by_value():
    assert ArrayType(INT, 5) == ArrayType(INT, 5)
    assert ArrayType(INT, 5) != ArrayType(INT, 6)
    assert ArrayType(INT, 5) != ArrayType(FLOAT, 5)
    assert PointerType(INT) == PointerType(INT)
    assert PointerType(INT) != PointerType(FLOAT)


def test_types_are_hashable():
    mapping = {ArrayType(INT, 2): "a", PointerType(FLOAT): "b", INT: "c"}
    assert mapping[ArrayType(INT, 2)] == "a"
    assert mapping[PointerType(FLOAT)] == "b"


def test_convenience_constructors():
    assert array_of(INT, 7) == ArrayType(INT, 7)
    assert pointer_to(FLOAT) == PointerType(FLOAT)


def test_pointer_slots():
    assert PointerType(ArrayType(INT, 100)).slots() == 1


def test_reprs_are_stable():
    assert repr(ArrayType(INT, 3)) == "[3 x int]"
    assert repr(PointerType(INT)) == "int*"
