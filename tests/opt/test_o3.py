"""The -O3 tier: interchange, skewed fusion, tiling, speculation.

Each transform gets a positive case (it fires, its witness records the
side condition, and execution stays conformant on every backend) and a
negative case (the legality predicate rejects with the reason recorded).
Speculation gets all three endings: validated (the oracle agrees and the
marker is discharged), vetoed (LU's wavefront — the oracle catches the
carried dependence the static test could not see), and disabled (the
``REPRO_SPECULATE`` knob turns inconclusive verdicts into rejections).
Adversarial cases hand-build plans the passes would never produce and
check the two enforcement layers: the oracle pass vetoes them, and the
runtime refuses still-speculative regions on real backends.
"""

import dataclasses

import pytest

from repro import Session
from repro.opt import OptLevel, optimize_plan
from repro.opt.manager import OptReport
from repro.opt.speculate import SpeculationValidationPass
from repro.opt.context import OptContext
from repro.planner.machine import DEFAULT_MACHINE
from repro.planner.plans import openmp_source_plan
from repro.runtime import run_plan
from repro.util.errors import PlanError
from support.conformance import outputs_close

BACKENDS = ("simulated", "threads", "processes")

#: Serial-outer / DOALL-inner perfect nest; every iteration updates its
#: own slot of its own outer row, so direction vectors are (*, =) and
#: interchange is provably legal.
NEST_OK = """
global m: float[16][16];

func main() {
  for i in 0..16 {
    for j in 0..16 {
      m[i][j] = float(i * 2 + j) * 0.5;
    }
  }
  for t in 0..12 {
    pragma omp parallel_for
    for i in 0..16 {
      m[t][i] = m[t][i] + float(t) * 0.25;
    }
  }
  print("m", m[0][0], m[5][7], m[11][15]);
}
"""

#: Same shape, but each row reads the previous row one column over:
#: race-free within one inner dispatch, yet the dependence is carried by
#: the inner loop across the nest — interchange must reject, and the
#: subscripts are affine so the rejection is conclusive, not speculative.
NEST_CARRIED = """
global m: float[16][16];

func main() {
  for i in 0..16 {
    for j in 0..16 {
      m[i][j] = float(i + j * 3) * 0.5;
    }
  }
  for t in 1..12 {
    pragma omp parallel_for
    for i in 0..15 {
      m[t][i] = m[t - 1][i + 1] + 1.0;
    }
  }
  print("m", m[1][0], m[6][7], m[11][14]);
}
"""

#: The column index is computed through a modulus, so the static test is
#: inconclusive — but the slots are in fact disjoint, so the oracle
#: validates the speculative interchange.
NEST_NONAFFINE_OK = """
global m: float[8][16];

func main() {
  for t in 0..8 {
    pragma omp parallel_for
    for i in 0..8 {
      var k: int = (i * 2) % 16;
      m[t][k] = float(t + i) * 0.5;
    }
  }
  print("m", m[0][0], m[3][6], m[7][14]);
}
"""

#: Two DOALL loops whose cross-loop dependence sits at uniform distance
#: 1 (the consumer reads its producer at j+1): plain fusion must reject,
#: skew-enabled fusion shifts the second member's partition instead.
SKEWABLE = """
global a: float[64];
global b: float[64];
global c: float[64];

func main() {
  for i in 0..63 {
    a[i] = float(i) * 0.5;
  }
  pragma omp parallel_for
  for i in 0..63 {
    b[i] = a[i] * 2.0;
  }
  pragma omp parallel_for
  for j in 0..63 {
    c[j] = b[j + 1] * 2.0;
  }
  print("c", c[0], c[31], c[62]);
}
"""


def _optimize(source, level=OptLevel.O3):
    session = Session.from_source(source, name="o3-test")
    plan = openmp_source_plan(session.function)
    result = optimize_plan(
        session.function, session.module, session.pdg, session.pspdg,
        plan, level, loops=session.loops,
    )
    return session, result


def _assert_conformant(session, plan, workers=4):
    expected = session.execution.output
    for backend in BACKENDS:
        for seed in (0, 1):
            result = run_plan(
                session.module, session.pspdg, plan,
                workers=workers, seed=seed, backend=backend,
            )
            assert outputs_close(result.output, expected), (
                f"{backend} seed={seed}: {result.output} != {expected}"
            )


class TestInterchange:
    def test_perfect_nest_interchanges_and_conforms(self):
        session, result = _optimize(NEST_OK)
        assert result.report.summary()["interchanged"] == 1
        region = next(r for r in result.plan.regions if r.outer_header)
        assert region.speculative is None
        assert "direction vectors (*, =)" in region.witness
        _assert_conformant(session, result.plan)

    def test_interchanged_nest_dispatches_once(self):
        session, result = _optimize(NEST_OK)
        run = run_plan(session.module, session.pspdg, result.plan,
                       workers=4, backend="processes")
        nested = [r for r in run.parallel_regions if "/" in r["header"]]
        assert len(nested) == 1
        # One dispatch covers all 12 outer x 16 inner pairs.
        assert nested[0]["iterations"] == 12 * 16

    def test_inner_carried_nest_is_rejected_conclusively(self):
        _session, result = _optimize(NEST_CARRIED)
        assert result.report.summary()["interchanged"] == 0
        assert result.report.summary()["speculated"] == 0
        reasons = [r for name, _subject, r in result.report.rejected
                   if name == "loop-interchange"]
        assert any("carried" in reason for reason in reasons)

    def test_o2_does_not_interchange(self):
        _session, result = _optimize(NEST_OK, level=OptLevel.O2)
        assert result.report.summary()["interchanged"] == 0
        assert all(r.outer_header is None for r in result.plan.regions)


class TestSkewedFusion:
    def test_uniform_distance_fuses_with_shift(self):
        session, result = _optimize(SKEWABLE)
        assert result.report.summary()["skewed"] == 1
        fused = next(r for r in result.plan.regions if r.fused)
        assert fused.member_shifts == (0, 1)
        assert "distance 1" in fused.witness
        _assert_conformant(session, result.plan)

    def test_plain_o2_fusion_rejects_the_same_pair(self):
        _session, result = _optimize(SKEWABLE, level=OptLevel.O2)
        assert result.report.summary()["fused"] == 0
        reasons = [r for name, _subject, r in result.report.rejected
                   if name == "region-fusion"]
        assert any("unaligned" in reason for reason in reasons)


class TestTiling:
    def test_tile_shape_comes_from_the_machine_model(self):
        _session, result = _optimize(NEST_OK)
        for region in result.plan.regions:
            if region.tile is None:
                continue
            headers = ([region.outer_header] if region.outer_header
                       else list(region.headers))
            assert region.tile >= 2, headers

    def test_tiling_caps_the_dispatch_width(self):
        session, result = _optimize(SKEWABLE)
        tiled = [r for r in result.plan.regions if r.tile]
        assert tiled, "no region tiled"
        run = run_plan(session.module, session.pspdg, result.plan,
                       workers=8, backend="processes")
        by_header = {r["header"]: r for r in run.parallel_regions}
        for region in tiled:
            stats = by_header[region.label]
            # Fused regions count every member's iterations; the runtime
            # partitions one member's trip and reuses the assignment.
            trip = stats["iterations"] // len(region.headers)
            expected_width = min(8, -(-trip // region.tile))
            dispatched = sum(
                1 for w in stats["per_worker"] if w["iterations"]
            )
            assert dispatched == expected_width, region.label


class TestSpeculation:
    def test_nonaffine_but_legal_nest_validates(self):
        session, result = _optimize(NEST_NONAFFINE_OK)
        summary = result.report.summary()
        assert summary["speculated"] == 1
        assert summary["vetoed"] == 0
        assert len(result.report.validated) == 1
        region = next(r for r in result.plan.regions if r.outer_header)
        # Validation discharges the marker so real backends accept it.
        assert region.speculative is None
        assert "oracle-validated" in region.witness
        _assert_conformant(session, result.plan)

    def test_lu_wavefront_speculation_is_vetoed(self):
        session = Session.from_kernel("LU")
        plan = session.plan("PS-PDG")
        result = optimize_plan(
            session.function, session.module, session.pdg, session.pspdg,
            plan, OptLevel.O3, loops=session.loops,
        )
        summary = result.report.summary()
        assert summary["speculated"] == 1
        assert summary["vetoed"] == 1
        pass_name, label, reason = result.report.vetoed[0]
        assert pass_name == "loop-interchange"
        assert "for.header.4" in label
        assert "diverged" in reason
        # The reverted plan carries no nest and no speculation marker...
        assert all(r.outer_header is None for r in result.plan.regions)
        assert all(r.speculative is None for r in result.plan.regions)
        # ...and the wavefront is serialized exactly as -O2 decides.
        o2 = optimize_plan(
            session.function, session.module, session.pdg, session.pspdg,
            plan, OptLevel.O2, loops=session.loops,
        )
        assert (result.plan.region_for("for.header.4").backend_override
                == o2.plan.region_for("for.header.4").backend_override)

    def test_knob_off_rejects_instead_of_speculating(self, monkeypatch):
        from repro.runtime import knobs

        monkeypatch.setattr(knobs, "REPRO_SPECULATE", False)
        _session, result = _optimize(NEST_NONAFFINE_OK)
        summary = result.report.summary()
        assert summary["speculated"] == 0
        assert summary["interchanged"] == 0
        reasons = [r for name, _subject, r in result.report.rejected
                   if name == "loop-interchange"]
        assert any("undecided" in reason or "non-affine" in reason
                   for reason in reasons)


class TestAdversarialSpeculation:
    """Hand-built wrong plans: both enforcement layers must hold."""

    def _carried_nest_state(self):
        session = Session.from_source(NEST_CARRIED, name="adversarial-o3")
        plan = openmp_source_plan(session.function)
        result = optimize_plan(
            session.function, session.module, session.pdg, session.pspdg,
            plan, OptLevel.O0, loops=session.loops,
        )
        return session, result.plan

    def _force_interchange(self, plan):
        """Apply the interchange the static test (rightly) refused, as
        if the legality predicate had been fooled."""
        regions = []
        for region in plan.regions:
            if region.headers == ("for.header.3",):
                region = dataclasses.replace(
                    region,
                    outer_header="for.header.2",
                    speculative="loop-interchange",
                    witness="adversarial: forced past the static test",
                )
            regions.append(region)
        return plan.with_regions(regions)

    def test_oracle_vetoes_a_wrong_forced_interchange(self):
        session, plan = self._carried_nest_state()
        wrong = self._force_interchange(plan)
        ctx = OptContext(session.function, session.module, session.pdg,
                         session.pspdg, session.loops, DEFAULT_MACHINE)
        report = OptReport(level=OptLevel.O3, plan_name=wrong.name)
        checked = SpeculationValidationPass().run(ctx, wrong, report)
        assert len(report.vetoed) == 1
        assert report.validated == []
        assert all(r.outer_header is None for r in checked.regions)
        assert all(r.speculative is None for r in checked.regions)
        # The reverted plan is safe to run for real.
        _assert_conformant(session, checked, workers=3)

    def test_real_backends_refuse_unvalidated_speculation(self):
        session, plan = self._carried_nest_state()
        wrong = self._force_interchange(plan)
        for backend in ("threads", "processes"):
            with pytest.raises(PlanError, match="speculative"):
                run_plan(session.module, session.pspdg, wrong,
                         workers=4, backend=backend)

    def test_the_oracle_itself_may_run_speculative_plans(self):
        # The simulated backend is how validation happens, so it must
        # accept the marker — and here it demonstrably diverges.
        session, plan = self._carried_nest_state()
        wrong = self._force_interchange(plan)
        expected = session.execution.output
        diverged = 0
        for seed in range(6):
            result = run_plan(session.module, session.pspdg, wrong,
                              workers=4, seed=seed, backend="simulated")
            if not outputs_close(result.output, expected):
                diverged += 1
        assert diverged > 0, "forced interchange never diverged"
