"""The -O pass pipeline: legality positives, negatives, and reports.

Fusion/sync-elimination/serialization each get direct positive cases
(the transform fires and execution stays conformant on every backend)
and negative cases (an illegal transform is rejected with the legality
predicate's reason recorded) — on both hand-written sources and the NAS
kernels whose structure motivated the passes (CG fuses, SP must not;
IS's merge critical is redundant, SP's binmax critical is not; LU's
wavefront serializes).
"""

import pytest

from repro import Session
from repro.opt import OptLevel, optimize_plan, seed_regions
from repro.opt.context import OptContext
from repro.opt.cost import loop_cost, static_trip_count
from repro.planner.machine import DEFAULT_MACHINE, MachineModel
from repro.planner.plans import openmp_source_plan
from repro.runtime import run_plan
from support.conformance import outputs_close

FUSABLE = """
global a: float[64];
global b: float[64];
global c: float[64];

func main() {
  for i in 0..64 {
    a[i] = float(i) * 0.5;
  }
  pragma omp parallel_for
  for i in 0..64 {
    b[i] = a[i] * 2.0;
  }
  pragma omp parallel_for
  for j in 0..64 {
    c[j] = b[j] + 1.0;
  }
  print("c", c[0], c[31], c[63]);
}
"""

#: Same shape, but the second loop reads its producer at j+1: the
#: cross-loop dependence is carried (distance 1), so per-worker fused
#: execution would read slots another worker has not written yet.
SHIFTED = """
global a: float[64];
global b: float[64];
global c: float[64];

func main() {
  for i in 0..63 {
    a[i] = float(i) * 0.5;
  }
  pragma omp parallel_for
  for i in 0..63 {
    b[i] = a[i] * 2.0;
  }
  pragma omp parallel_for
  for j in 0..63 {
    c[j] = b[j + 1] * 2.0;
  }
  print("c", c[0], c[31], c[62]);
}
"""

#: The second loop consumes a scalar the first loop reduces into: its
#: sequential value is the *complete* sum, which no per-worker fused
#: schedule can have before the first loop fully finishes.
SCALAR_FLOW = """
global a: float[64];
global c: float[64];

func main() {
  for i in 0..64 {
    a[i] = float(i) * 0.5;
  }
  var s: float = 0.0;
  pragma omp parallel_for reduction(+: s)
  for i in 0..64 {
    s = s + a[i];
  }
  pragma omp parallel_for
  for j in 0..64 {
    c[j] = a[j] + s;
  }
  print("c", c[0], c[63]);
}
"""


def _optimize_source(source, level=OptLevel.O2, machine=None):
    session = Session.from_source(source, name="opt-test")
    plan = openmp_source_plan(session.function)
    result = optimize_plan(
        session.function, session.module, session.pdg, session.pspdg,
        plan, level, machine=machine,
    )
    return session, result


def _annotated_headers(function):
    return [
        annotation.loop_header
        for annotation in function.annotations
        if annotation.loop_header is not None
    ]


class TestFusionLegality:
    def test_adjacent_aligned_loops_fuse(self):
        session, result = _optimize_source(FUSABLE)
        headers = tuple(_annotated_headers(session.function))
        assert result.report.fused == [headers]
        region = result.plan.region_for(headers[0])
        assert region.headers == headers
        assert region.fused

    def test_fused_execution_conforms_on_every_backend(self):
        session, result = _optimize_source(FUSABLE)
        expected = session.execution.output
        for backend in ("simulated", "threads", "processes"):
            for workers in (1, 3, 4):
                run = run_plan(
                    session.module, session.pspdg, result.plan,
                    workers=workers, backend=backend,
                )
                assert outputs_close(run.output, expected), (
                    backend, workers, run.output)
        # The fused pair really is one dispatch.
        run = run_plan(session.module, session.pspdg, result.plan,
                       workers=4, backend="simulated")
        fused = [r for r in run.parallel_regions if r["fused"]]
        assert len(fused) == 1
        assert "+" in fused[0]["header"]

    def test_carried_cross_loop_dependence_rejected(self):
        session, result = _optimize_source(SHIFTED)
        assert result.report.fused == []
        reasons = [
            reason
            for _pass, _subject, reason in result.report.rejected
        ]
        assert any("unaligned dependence" in reason for reason in reasons)
        # And the unfused plan still conforms.
        expected = session.execution.output
        run = run_plan(session.module, session.pspdg, result.plan,
                       workers=4, backend="simulated")
        assert outputs_close(run.output, expected)

    def test_scalar_flow_between_loops_rejected(self):
        session, result = _optimize_source(SCALAR_FLOW)
        assert result.report.fused == []
        expected = session.execution.output
        for backend in ("simulated", "processes"):
            run = run_plan(session.module, session.pspdg, result.plan,
                           workers=4, backend=backend)
            assert outputs_close(run.output, expected)

    def test_cg_fuses_matvec_with_dot(self, nas_state):
        result = nas_state("CG")
        assert any(len(headers) == 2 for headers in result.report.fused)

    def test_sp_and_bt_stencils_do_not_fuse(self, nas_state):
        for kernel in ("SP", "BT"):
            result = nas_state(kernel)
            assert result.report.fused == [], kernel
            assert result.report.rejections_for("region-fusion"), kernel


class TestSyncElimination:
    def test_is_merge_critical_removed(self, nas_state):
        result = nas_state("IS")
        removed = result.report.syncs_removed
        assert any(kind == "critical" for _h, kind, _uid in removed)
        region = result.plan.region_for("for.header.5")
        assert region is not None and region.removed_sync_uids

    def test_sp_binmax_critical_kept(self, nas_state):
        """binmax[i % 4] collides across iterations (non-affine subscript
        -> conservative carried dependence): the lock must survive."""
        result = nas_state("SP")
        assert result.report.syncs_removed == []
        rejections = result.report.rejections_for("sync-elimination")
        assert any("binmax" in reason for _p, _s, reason in rejections)

    def test_removed_sync_sheds_serialized_uids(self, nas_state):
        result = nas_state("IS")
        loop_plan = result.plan.plan_for("for.header.5")
        assert loop_plan.serialized_uids == frozenset()

    def test_processes_backend_skips_threads_fallback(self, nas_state):
        """With the critical elided, IS's merge loop may run on real
        processes instead of falling back to shared-memory threads."""
        session = Session.from_kernel("IS", opt_level=2)
        result = session.run("PS-PDG", workers=4, backend="processes")
        merge_regions = [
            region
            for region in result.parallel_regions
            if "for.header.5" in region["header"]
        ]
        assert merge_regions
        assert all(
            "(critical)" not in region["backend"]
            for region in merge_regions
        )


class TestSerialization:
    def test_lu_wavefront_leaves_the_process_pool(self, nas_state):
        result = nas_state("LU")
        serialized = {label for label, _cost, _ov in result.report.serialized}
        assert "for.header.4" in serialized
        region = result.plan.region_for("for.header.4")
        assert region.backend_override in ("sequential", "threads")

    def test_thresholds_come_from_the_machine_model(self):
        # An absurdly high serial threshold serializes everything ...
        machine = MachineModel(serial_region_cost=10**9,
                               threads_region_cost=10**9)
        session, result = _optimize_source(FUSABLE, machine=machine)
        assert all(
            region.backend_override == "sequential"
            for region in result.plan.regions
        )
        # ... and serialized regions are simply not dispatched.
        run = run_plan(session.module, session.pspdg, result.plan,
                       workers=4, backend="simulated")
        assert run.parallel_regions == []
        assert outputs_close(run.output, session.execution.output)

    def test_unknown_trip_counts_stay_parallel(self):
        source = """
global a: float[64];

func main() {
  var n: int = 5;
  pragma omp parallel_for
  for i in 0..n {
    a[i] = float(i);
  }
  print("a", a[0], a[4]);
}
"""
        session, result = _optimize_source(source, level=OptLevel.O1)
        assert result.report.serialized == []
        assert all(
            region.backend_override is None
            for region in result.plan.regions
        )


BULK = """
global a: float[4096];

func main() {
  pragma omp parallel_for
  for i in 0..4096 {
    a[i] = float(i) * 2.0;
  }
  print("a", a[0], a[4095]);
}
"""


class TestSerializationCostFeedback:
    """Measured bytes-on-wire feed the process-pool dispatch bar."""

    def _optimize(self, payload_bytes=None, prelude_warm=None,
                  compile_regions=False, compiled_speedup=None):
        session = Session.from_source(BULK, name="payload-feedback")
        plan = openmp_source_plan(session.function)
        return optimize_plan(
            session.function, session.module, session.pdg, session.pspdg,
            plan, OptLevel.O1, payload_bytes=payload_bytes,
            prelude_warm=prelude_warm, compile_regions=compile_regions,
            compiled_speedup=compiled_speedup,
        )

    def test_without_measurements_the_region_stays_on_the_pool(self):
        result = self._optimize()
        assert len(result.plan.regions) == 1
        assert result.plan.regions[0].backend_override is None

    def test_measured_bytes_raise_the_process_bar(self):
        label = self._optimize().plan.regions[0].label
        result = self._optimize(payload_bytes={label: 10_000_000})
        assert result.plan.regions[0].backend_override == "threads"
        assert result.report.serialized
        # A cheap-to-ship region is unaffected.
        small = self._optimize(payload_bytes={label: 64})
        assert small.plan.regions[0].backend_override is None

    def test_measured_speedup_replaces_the_model_prior(self):
        label = self._optimize().plan.regions[0].label
        # BULK's region costs ~4096 * body steps; the model's 3x prior
        # keeps it above the serial bar, but a measured speedup large
        # enough drops the effective cost below it.
        prior = self._optimize(compile_regions=True)
        assert prior.plan.regions[0].backend_override is None
        measured = self._optimize(
            compile_regions=True, compiled_speedup={label: 1_000_000.0}
        )
        assert measured.plan.regions[0].backend_override == "sequential"
        # Without region compilation the measurement is ignored.
        off = self._optimize(compiled_speedup={label: 1_000_000.0})
        assert off.plan.regions[0].backend_override is None

    def test_serialization_cost_term(self):
        machine = MachineModel()
        assert machine.serialization_cost(0) == 0
        assert machine.serialization_cost(None) == 0
        assert machine.serialization_cost(100_000) == int(
            100_000 * machine.payload_cost_per_byte
        )

    def test_serialization_cost_never_truncates_to_free(self):
        """Sub-1 products must clamp to 1: shipped bytes are never free.

        At the default 0.01/byte, any payload under 100 bytes used to
        truncate to 0 instruction-equivalents."""
        machine = MachineModel()
        assert machine.serialization_cost(1) == 1
        assert machine.serialization_cost(99) == 1
        assert machine.serialization_cost(99, warm_fraction=1.0) == 1
        # The zero-bytes case (nothing shipped) genuinely costs nothing.
        assert machine.serialization_cost(0) == 0

    def test_effective_region_cost_clamps_to_one(self):
        """Regression: cost < speedup truncated to 0, mispricing a
        small-but-real compiled region as free to the serialization
        pass."""
        machine = MachineModel(compiled_speedup=3.0)
        assert machine.effective_region_cost(2, compiled=True) == 1
        assert machine.effective_region_cost(1, compiled=True) == 1
        assert machine.effective_region_cost(9, compiled=True) == 3
        # Interpreted / unknown costs pass through untouched.
        assert machine.effective_region_cost(2, compiled=False) == 2
        assert machine.effective_region_cost(None, compiled=True) is None

    def test_effective_region_cost_prefers_measured_speedup(self):
        machine = MachineModel(compiled_speedup=3.0)
        assert machine.effective_region_cost(
            90, compiled=True, speedup=4.5
        ) == 20
        # None/0 measured values fall back to the model's prior, and
        # sub-1 measured speedups never *raise* the cost.
        assert machine.effective_region_cost(
            90, compiled=True, speedup=None
        ) == 30
        assert machine.effective_region_cost(
            90, compiled=True, speedup=0.25
        ) == 90

    def test_warm_fraction_discounts_the_cost(self):
        machine = MachineModel()
        cold = machine.serialization_cost(100_000)
        warm = machine.serialization_cost(100_000, warm_fraction=1.0)
        assert warm == int(cold * (1.0 - machine.prelude_cache_discount))
        half = machine.serialization_cost(100_000, warm_fraction=0.5)
        assert warm < half < cold
        # Out-of-range fractions are clamped, never negative-costed.
        assert machine.serialization_cost(100_000, warm_fraction=7.0) == warm
        assert machine.serialization_cost(100_000, warm_fraction=-1.0) == cold

    def test_cached_prelude_keeps_the_region_on_the_pool(self):
        """The resident-prelude hit rate must be able to reverse a
        measured-bytes serialization: bytes that forced a region onto
        threads when cold stay on the pool once the prelude is cached."""
        label = self._optimize().plan.regions[0].label
        # 10M measured bytes: the cold bar (2048 + 100k instruction-
        # equivalents) crosses the region's ~57k static cost, but the
        # fully-warm discounted bar (2048 + 25k) does not.
        bytes_on_wire = 10_000_000
        cold = self._optimize(payload_bytes={label: bytes_on_wire})
        assert cold.plan.regions[0].backend_override == "threads"
        warm = self._optimize(
            payload_bytes={label: bytes_on_wire},
            prelude_warm={label: 1.0},
        )
        assert warm.plan.regions[0].backend_override is None


class TestCostModel:
    def test_static_trip_counts(self):
        session = Session.from_kernel("LU")
        loops = {
            loop.header.name: loop for loop in session.loops
        }
        assert static_trip_count(loops["for.header.4"]) == 18
        assert static_trip_count(loops["for.header.3"]) == 36

    def test_nested_costs_multiply(self):
        session = Session.from_kernel("LU")
        loops = {loop.header.name: loop for loop in session.loops}
        outer = loop_cost(loops["for.header.5"])  # 20 x (20-iter inner)
        inner = loop_cost(loops["for.header.4"])  # 18 flat iterations
        assert outer > inner
        assert outer > 20 * 20  # at least one instruction per inner iter


class TestPipelineStructure:
    def test_o0_seeds_but_never_rewrites(self, nas_state):
        result = nas_state("CG", OptLevel.O0)
        assert all(count == 0 for count in result.report.summary().values())
        assert result.plan.regions  # seeded: one region per DOALL loop
        assert all(len(region.headers) == 1 for region in result.plan.regions)
        assert all(
            region.backend_override is None for region in result.plan.regions
        )

    def test_o1_skips_fusion(self, nas_state):
        result = nas_state("CG", OptLevel.O1)
        assert result.report.fused == []
        assert result.level is OptLevel.O1

    def test_seeded_regions_match_legacy_dispatch_set(self):
        session = Session.from_kernel("MG")
        plan = session.plan("PS-PDG")
        ctx = OptContext(session.function, session.module, session.pdg,
                         session.pspdg, session.loops, DEFAULT_MACHINE)
        seeded = seed_regions(ctx, plan)
        from repro.runtime.executor import recipes_from_plan

        legacy = recipes_from_plan(session.module, session.pspdg, plan,
                                   session.function)
        assert sorted(r.headers[0] for r in seeded.regions) == sorted(
            region.header for region in legacy
        )

    def test_level_coercion(self):
        assert OptLevel.coerce("-O2") is OptLevel.O2
        assert OptLevel.coerce("O1") is OptLevel.O1
        assert OptLevel.coerce("0") is OptLevel.O0
        assert OptLevel.coerce(2) is OptLevel.O2
        assert OptLevel.coerce(OptLevel.O1) is OptLevel.O1
        assert OptLevel.coerce(3) is OptLevel.O3
        assert OptLevel.coerce("-O3") is OptLevel.O3
        for bad in ("fast", 4, None, True, 2.0):
            with pytest.raises(ValueError):
                OptLevel.coerce(bad)

    def test_merged_recipe_unifies_private_sets(self):
        session, result = _optimize_source(FUSABLE)
        from repro.runtime.executor import recipes_from_plan

        regions = recipes_from_plan(session.module, session.pspdg,
                                    result.plan, session.function)
        fused = [region for region in regions if region.fused]
        assert len(fused) == 1
        merged = fused[0].merged_recipe()
        member_privates = {
            id(storage)
            for recipe in fused[0].recipes
            for storage in recipe.privatized
        }
        assert {id(s) for s in merged.privatized} == member_privates


@pytest.fixture(scope="module")
def nas_state():
    """kernel (+ level) -> OptimizationResult, memoized per module."""
    cache = {}

    def build(kernel, level=OptLevel.O2):
        key = (kernel, level)
        if key not in cache:
            session = Session.from_kernel(kernel)
            cache[key] = optimize_plan(
                session.function, session.module, session.pdg,
                session.pspdg, session.plan("PS-PDG"), level,
            )
        return cache[key]

    return build
