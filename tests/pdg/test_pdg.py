"""Sequential PDG construction."""

from repro.frontend import compile_source
from repro.pdg import EDGE_CONTROL, EDGE_MEMORY, EDGE_REGISTER, build_pdg


def pdg_for(source):
    module = compile_source(source)
    function = module.function("main")
    return build_pdg(function, module)


def test_every_instruction_is_a_node():
    pdg = pdg_for("func main() { var x: int = 1; print(x); }")
    assert len(pdg.nodes) == pdg.function.instruction_count()


def test_register_edges_follow_operands():
    pdg = pdg_for("func main() { var x: int = 1; print(x + 2); }")
    register_edges = [e for e in pdg.edges if e.kind == EDGE_REGISTER]
    assert register_edges
    for edge in register_edges:
        assert edge.source in edge.destination.operands


def test_control_edges_source_from_branches():
    pdg = pdg_for(
        "func main() { var x: int = 1; if (x > 0) { print(1); } }"
    )
    control_edges = [e for e in pdg.edges if e.kind == EDGE_CONTROL]
    assert control_edges
    assert all(e.source.opcode == "branch" for e in control_edges)


def test_memory_edges_have_objects_and_kinds():
    pdg = pdg_for(
        "global a: int[4];\nfunc main() { a[0] = 1; print(a[0]); }"
    )
    memory_edges = [e for e in pdg.edges if e.kind == EDGE_MEMORY]
    assert any(e.mem_kind == "RAW" for e in memory_edges)
    assert all(e.obj is not None for e in memory_edges)


def test_statistics_shape():
    pdg = pdg_for("func main() { var s: int = 0;\n"
                  "for i in 0..3 { s = s + i; } print(s); }")
    stats = pdg.statistics()
    assert stats["nodes"] == len(pdg.nodes)
    assert stats["edges"] == len(pdg.edges)
    assert stats["carried_edges"] > 0


def test_loop_adjacency_restricted_to_loop():
    pdg = pdg_for("func main() { var s: int = 0;\n"
                  "for i in 0..3 { s = s + i; } print(s); }")
    loop = pdg.loops[0]
    nodes, adjacency = pdg.loop_adjacency(loop)
    node_set = set(nodes)
    for src, dsts in adjacency.items():
        assert src in node_set
        assert all(d in node_set for d in dsts)


def test_loops_attached_to_pdg():
    pdg = pdg_for("func main() { for i in 0..3 { } }")
    assert len(pdg.loops) == 1


def test_dot_export_renders():
    pdg = pdg_for("func main() { var x: int = 1; print(x); }")
    dot = pdg.to_dot()
    assert dot.startswith("digraph") and dot.endswith("}")
