"""Cache behavior of the ``optimize``/``recipes`` stages across -O levels.

Changing ``OptLevel`` must miss exactly the two optimization stages and
reuse every cached artifact upstream (module/alias/PDG/PS-PDG): the
stage key covers ``opt_level`` (and the machine model's cost
thresholds), and the stage graph's dependency closure keeps the
expensive graph builds out of the re-keyed set.
"""

from repro import OptLevel, Session


def _runs(session, *stages):
    return {stage: session.diagnostics.runs(stage) for stage in stages}


GRAPH_STAGES = ("module", "alias", "pdg", "pspdg")
OPT_STAGES = ("optimize", "recipes")


def test_opt_level_change_misses_only_opt_stages():
    session = Session.from_kernel("CG")  # default -O0
    assert session.config.opt_level is OptLevel.O0
    _ = session.region_recipes
    assert _runs(session, *GRAPH_STAGES) == {s: 1 for s in GRAPH_STAGES}
    assert _runs(session, *OPT_STAGES) == {s: 1 for s in OPT_STAGES}

    session.reconfigure(opt_level=OptLevel.O2)
    _ = session.region_recipes
    assert _runs(session, *OPT_STAGES) == {s: 2 for s in OPT_STAGES}
    # The graphs were not rebuilt.
    assert _runs(session, *GRAPH_STAGES) == {s: 1 for s in GRAPH_STAGES}

    # Flipping back is a pure cache hit: nothing rebuilds.
    session.reconfigure(opt_level=0)
    _ = session.region_recipes
    assert _runs(session, *OPT_STAGES) == {s: 2 for s in OPT_STAGES}


def test_machine_model_change_rekeys_optimize():
    from repro.planner.machine import MachineModel

    session = Session.from_kernel("LU", opt_level=2)
    _ = session.region_recipes
    session.reconfigure(machine=MachineModel(serial_region_cost=10**9,
                                             threads_region_cost=10**9))
    _ = session.region_recipes
    assert session.diagnostics.runs("optimize") == 2
    assert session.diagnostics.runs("pspdg") == 1
    # With everything below the serial threshold nothing is dispatched.
    assert session.region_recipes["PS-PDG"] == []


def test_levels_change_region_structure_not_results():
    session = Session.from_kernel("CG", opt_level=0)
    o0 = session.run("PS-PDG", workers=4)
    session.reconfigure(opt_level=2)
    o2 = session.run("PS-PDG", workers=4)
    assert o0.output == o2.output
    plan = session.optimized_plan("PS-PDG")
    assert any(region.fused for region in plan.regions)


def test_explicit_opt_override_bypasses_caches():
    session = Session.from_kernel("IS")  # -O0 config
    _ = session.region_recipes
    runs_before = session.diagnostics.runs("optimize")
    result = session.run("PS-PDG", workers=2, opt=2)
    assert result.output == session.run("PS-PDG", workers=2).output
    # The on-the-fly -O2 run did not rebuild the cached stage.
    assert session.diagnostics.runs("optimize") == runs_before


def test_opt_level_in_config_fingerprint():
    base = Session.from_kernel("EP").config
    assert "opt_level=OptLevel.O0" in base.fingerprint()
    derived = base.derive(opt_level="O2")
    assert derived.opt_level is OptLevel.O2
    assert base.fingerprint() != derived.fingerprint()


def test_optimization_accessors_raise_on_unknown_abstraction():
    import pytest

    session = Session.from_kernel("EP")
    with pytest.raises(KeyError):
        session.optimization("nope")
