"""The Session API: lazy stages, exactly-once caching, invalidation, CLI."""

import subprocess
import sys
import warnings
from pathlib import Path

import pytest

from repro import Session, SessionConfig
from repro.planner import MachineModel
from repro.planner.experiments import (
    BenchmarkSetup,
    fig13_options,
    fig14_critical_paths,
    prepare_benchmark,
)
from repro.planner.plans import ProgramPlan

SOURCE = """
global data: int[64];
global hist: int[8];

func main() {
  for s in 0..64 {
    data[s] = (s * 13 + 3) % 41;
  }
  var total: int = 0;
  pragma omp parallel_for reduction(+: total)
  for i in 0..64 {
    total = total + data[i];
  }
  print("total", total);
}
"""

SOURCE_CHANGED = SOURCE.replace("% 41", "% 17")

GRAPH_STAGES = ("module", "profile", "alias", "pdg", "pspdg", "views")


@pytest.fixture
def session():
    return Session.from_source(SOURCE, name="t")


# -- laziness -----------------------------------------------------------------


def test_construction_runs_nothing(session):
    assert len(session.cache) == 0
    assert session.diagnostics.runs("module") == 0


def test_module_access_builds_only_the_frontend(session):
    session.module
    assert session.diagnostics.runs("module") == 1
    for stage in ("profile", "pdg", "pspdg", "views"):
        assert session.diagnostics.runs(stage) == 0, stage


def test_pspdg_pulls_upstream_stages_not_profile(session):
    session.pspdg
    for stage in ("module", "alias", "pdg", "pspdg"):
        assert session.diagnostics.runs(stage) == 1, stage
    # The PS-PDG does not need the interpreter.
    assert session.diagnostics.runs("profile") == 0


# -- exactly-once memoization -------------------------------------------------


def test_every_stage_runs_exactly_once(session):
    for _ in range(3):
        session.plan()
        session.options()
        session.critical_paths()
    for stage in GRAPH_STAGES:
        assert session.diagnostics.runs(stage) == 1, stage
    assert session.diagnostics.runs("options") == 1
    assert session.diagnostics.runs("critical_paths") == 1
    assert session.cache.hits > 0


def test_repeated_queries_return_identical_artifacts(session):
    assert session.plan() is session.plan()
    assert session.options() is session.options()
    assert session.pspdg is session.pspdg


def test_plan_is_a_program_plan(session):
    plan = session.plan()
    assert isinstance(plan, ProgramPlan)
    assert session.plan("OpenMP").name == "OpenMP"
    with pytest.raises(KeyError):
        session.plan("no-such-abstraction")


# -- config-driven behavior ---------------------------------------------------


def test_machine_override_changes_options_not_graphs(session):
    small = session.options(MachineModel(cores=4, chunk_sizes=(1,)))
    large = session.options(MachineModel(cores=8, chunk_sizes=(1,)))
    assert small.totals["PS-PDG"] * 2 == large.totals["PS-PDG"]
    assert session.diagnostics.runs("options") == 2
    assert session.diagnostics.runs("pspdg") == 1


def test_config_machine_flows_into_options():
    machine = MachineModel(cores=3, chunk_sizes=(1,))
    session = Session.from_source(SOURCE, name="t", machine=machine)
    # One DOALL loop candidate parallelized by the programmer: the
    # annotated loop contributes cores x chunks options.
    assert session.options().totals["OpenMP"] == 3


def test_reconfigure_keeps_expensive_stages_cached(session):
    session.plan()
    session.reconfigure(machine=MachineModel(cores=2, chunk_sizes=(1,)))
    session.options()
    assert session.diagnostics.runs("pspdg") == 1
    assert session.diagnostics.runs("profile") == 1


def test_rename_rekeys_downstream_stages(session):
    # Changing the session name re-keys the module stage; every
    # downstream artifact must follow it — no mixed-module state.
    session.pspdg
    session.reconfigure(name="renamed")
    sequential = session.execution.formatted_output()
    result = session.run(session.plan())
    assert result.formatted_output() == sequential
    assert session.diagnostics.runs("pspdg") == 2


def test_explicit_config_name_is_respected():
    config = SessionConfig(name="explicit")
    session = Session.from_source(SOURCE, config=config)
    assert session.config.name == "explicit"
    # A direct name= argument still wins over the config.
    named = Session.from_source(SOURCE, name="direct", config=config)
    assert named.config.name == "direct"
    kernel = Session.from_kernel("EP", config=config)
    assert kernel.config.name == "explicit"


def test_abstraction_subset(session):
    session.reconfigure(abstractions=("PS-PDG",))
    assert set(session.views) == {"PS-PDG"}
    results = session.critical_paths()
    assert "PS-PDG" in results and "PDG" not in results


def test_unknown_abstraction_rejected():
    with pytest.raises(ValueError):
        SessionConfig(abstractions=("PDG", "bogus"))


def test_config_is_immutable(session):
    with pytest.raises(Exception):
        session.config.name = "other"


# -- invalidation -------------------------------------------------------------


def test_source_change_invalidates_pipeline(session):
    before = session.pspdg
    first_output = session.execution.formatted_output()
    session.source = SOURCE_CHANGED
    after = session.pspdg
    assert after is not before
    assert session.diagnostics.runs("pspdg") == 2
    assert session.execution.formatted_output() != first_output


def test_explicit_invalidate_forces_rebuild(session):
    session.pspdg
    dropped = session.invalidate()
    assert dropped > 0
    session.pspdg
    assert session.diagnostics.runs("pspdg") == 2


# -- constructors -------------------------------------------------------------


def test_from_module_and_from_kernel():
    kernel_session = Session.from_kernel("EP")
    assert kernel_session.config.name == "EP"
    module_session = Session.from_module(kernel_session.module, name="EP2")
    assert module_session.options().totals["PS-PDG"] > 0


def test_requires_exactly_one_program_origin():
    with pytest.raises(ValueError):
        Session()
    with pytest.raises(ValueError):
        Session(source=SOURCE, module=object())


# -- execution ----------------------------------------------------------------


def test_run_plan_matches_sequential(session):
    sequential = session.execution.formatted_output()
    for seed in (0, 1):
        result = session.run(session.plan(), seed=seed)
        assert result.formatted_output() == sequential
    assert session.run("source").formatted_output() == sequential


# -- deprecation shims --------------------------------------------------------


def test_shims_warn_and_delegate():
    session = Session.from_source(SOURCE, name="t")
    with pytest.warns(DeprecationWarning):
        setup = prepare_benchmark("t", session.module)
    assert isinstance(setup, BenchmarkSetup)
    assert setup.session is not None
    with pytest.warns(DeprecationWarning):
        report = fig13_options(setup)
    with pytest.warns(DeprecationWarning):
        results = fig14_critical_paths(setup)
    assert report.totals == session.options().totals
    assert (
        results["PS-PDG"]["critical_path"]
        == session.critical_paths()["PS-PDG"]["critical_path"]
    )
    # The shim rides the wrapped session's cache.
    with pytest.warns(DeprecationWarning):
        fig13_options(setup)
    assert setup.session.diagnostics.runs("options") == 1


def test_top_level_compile_source_warns():
    import repro

    with pytest.warns(DeprecationWarning):
        module = repro.compile_source(SOURCE)
    assert module.function("main") is not None


def test_benchmark_setup_is_slotted():
    session = Session.from_source(SOURCE, name="t")
    setup = session.benchmark_setup()
    assert not hasattr(setup, "__dict__")
    with pytest.raises(AttributeError):
        setup.unknown_field = 1


# -- diagnostics --------------------------------------------------------------


def test_diagnostics_report_renders(session):
    session.plan()
    text = session.describe()
    for stage in ("module", "pdg", "pspdg", "critical_paths"):
        assert stage in text
    as_dict = session.diagnostics.as_dict()
    assert as_dict["pspdg"]["runs"] == 1
    assert as_dict["pspdg"]["stats"]["hierarchical_nodes"] > 0


def test_payload_feedback_aggregates_per_label():
    from repro.pipeline.diagnostics import Diagnostics

    diagnostics = Diagnostics()
    diagnostics.record_parallel({
        "header": "L1", "payloads": 4, "payload_bytes": 4000,
        "prelude_hits": 0, "per_worker": [],
    })
    diagnostics.record_parallel({
        "header": "L1", "payloads": 4, "payload_bytes": 400,
        "prelude_hits": 4, "per_worker": [],
    })
    diagnostics.record_parallel({
        "header": "L2", "payloads": 2, "payload_bytes": 600,
        "prelude_hits": 1, "per_worker": [],
    })
    diagnostics.record_parallel({
        "header": "seq", "payloads": 0, "per_worker": [],
    })
    payload_bytes, prelude_warm, speedup, recovery = (
        diagnostics.payload_feedback()
    )
    assert payload_bytes == {"L1": 4400 // 8, "L2": 300}
    assert prelude_warm == {"L1": 0.5, "L2": 0.5}
    assert "seq" not in payload_bytes
    assert speedup == {}  # no chunk-mode executions recorded
    assert recovery == {}  # no supervised recoveries recorded


def test_payload_feedback_measures_compiled_speedup():
    from repro.pipeline.diagnostics import Diagnostics

    diagnostics = Diagnostics()
    # Two interpreted runs at 1000 steps/s, one compiled at 4000.
    for _ in range(2):
        diagnostics.record_parallel({
            "header": "L1", "seconds": 1.0, "interpreted_chunks": 4,
            "per_worker": [{"steps": 500}, {"steps": 500}],
        })
    diagnostics.record_parallel({
        "header": "L1", "seconds": 0.5, "compiled_chunks": 4,
        "per_worker": [{"steps": 1000}, {"steps": 1000}],
    })
    # Mixed executions are not attributable to either engine.
    diagnostics.record_parallel({
        "header": "L2", "seconds": 1.0, "compiled_chunks": 2,
        "interpreted_chunks": 2, "per_worker": [{"steps": 1000}],
    })
    # Compiled-only regions have no interpreted baseline to compare to.
    diagnostics.record_parallel({
        "header": "L3", "seconds": 1.0, "compiled_chunks": 2,
        "per_worker": [{"steps": 1000}],
    })
    _bytes, _warm, speedup, _recovery = diagnostics.payload_feedback()
    assert speedup == {"L1": pytest.approx(4.0)}


def test_parallel_report_shows_prelude_columns(session):
    session.run("PS-PDG", workers=2, backend="processes")
    report = session.diagnostics.parallel_report()
    assert "phit" in report and "pmiss" in report and "saved" in report


# -- the CLI ------------------------------------------------------------------


def _run_cli(*argv):
    import os

    repo_root = Path(__file__).resolve().parents[2]
    env = dict(os.environ)
    src = str(repo_root / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}:{existing}" if existing else src
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True,
        text=True,
        cwd=repo_root,
        env=env,
    )


def test_cli_plan_on_example_source():
    proc = _run_cli("plan", "examples/histogram.mop")
    assert proc.returncode == 0, proc.stderr
    assert "PS-PDG" in proc.stdout
    assert "DOALL" in proc.stdout


def test_cli_run_verifies_against_sequential():
    proc = _run_cli(
        "run", "examples/histogram.mop", "--plan", "PS-PDG", "--verify"
    )
    assert proc.returncode == 0, proc.stderr
    assert "checksum" in proc.stdout
    assert "matches sequential" in proc.stderr


def test_cli_compile_and_report(tmp_path):
    proc = _run_cli("compile", "examples/histogram.mop", "--pspdg")
    assert proc.returncode == 0, proc.stderr
    assert "PS-PDG" in proc.stdout

    proc = _run_cli("report", "examples/histogram.mop", "EP")
    assert proc.returncode == 0, proc.stderr
    assert "Fig. 13" in proc.stdout
    assert "Fig. 14" in proc.stdout
    assert "EP" in proc.stdout


def test_cli_knobs_lists_the_registry():
    from repro.runtime import knobs

    proc = _run_cli("knobs")
    assert proc.returncode == 0, proc.stderr
    for name in knobs.snapshot():
        assert name in proc.stdout
    assert "default on" in proc.stdout  # RESIDENT_PRELUDE
    markdown = _run_cli("knobs", "--markdown")
    assert markdown.returncode == 0, markdown.stderr
    assert markdown.stdout.strip() == knobs.markdown_table()


def test_cli_rejects_unknown_program():
    proc = _run_cli("plan", "no/such/file.mop")
    assert proc.returncode != 0
    assert "neither a source file nor a NAS kernel" in proc.stderr


# -- profile-guided calibration ------------------------------------------------


def test_calibrate_flow_persists_and_warms(tmp_path):
    """Run -> profile file -> warm session plans with measured numbers."""
    import json

    from repro.planner.machine import DEFAULT_MACHINE

    profile = str(tmp_path / "profile.json")
    cold = Session.from_kernel(
        "IS", opt_level=2, backend="processes", workers=2,
        calibrate=True, profile_path=profile,
    )
    assert cold.calibrate_enabled
    cold.run("PS-PDG")

    data = json.loads(Path(profile).read_text())
    assert data["machine"]  # measured coefficients landed on disk

    warm = Session.from_kernel(
        "IS", opt_level=2, backend="processes", workers=2,
        calibrate=True, profile_path=profile,
    )
    assert warm.calibration.observed
    calibrated = warm.calibrated
    assert calibrated["machine"] != DEFAULT_MACHINE
    assert calibrated["measured"]
    # The remembered per-region wire feedback is keyed by this program.
    assert calibrated["payload_bytes"]


def test_calibration_rekeys_optimize_stage():
    """A new observation re-prices plans without rebuilding the graphs."""
    session = Session.from_kernel(
        "IS", opt_level=2, backend="processes", workers=2, calibrate=True,
    )
    session.optimizations  # build once (no observations yet)
    assert session.diagnostics.runs("optimize") == 1
    pspdg_runs = session.diagnostics.runs("pspdg")

    session.run("PS-PDG")  # observes -> store.version moves
    assert session.calibration.observed
    session.optimizations  # re-keyed: rebuilds with measured numbers
    assert session.diagnostics.runs("optimize") >= 2
    assert session.diagnostics.runs("pspdg") == pspdg_runs


def test_calibration_off_keeps_static_keys():
    session = Session.from_kernel("IS", opt_level=2, workers=2)
    assert not session.calibrate_enabled
    session.optimizations
    session.run("PS-PDG")
    session.optimizations
    assert session.diagnostics.runs("optimize") == 1
    assert session.calibrated["machine"] == session.config.machine


def test_cli_profile_subcommand(tmp_path):
    profile = tmp_path / "profile.json"
    proc = _run_cli("profile", "--profile", str(profile))
    assert proc.returncode == 0, proc.stderr
    assert "payload_cost_per_byte" in proc.stdout
    assert "(static)" in proc.stdout

    # Calibrate through the run subcommand, then print what landed.
    proc = _run_cli(
        "run", "IS", "--plan", "PS-PDG", "-O", "2",
        "--backend", "processes", "--workers", "2",
        "--calibrate", "--profile", str(profile),
    )
    assert proc.returncode == 0, proc.stderr
    assert profile.exists()

    proc = _run_cli("profile", "IS", "--profile", str(profile))
    assert proc.returncode == 0, proc.stderr
    assert "region feedback" in proc.stdout
