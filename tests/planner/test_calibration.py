"""CalibrationStore: EWMA behavior, outlier rejection, persistence.

The store is the profile-guided planning substrate: region stats in,
measured MachineModel coefficients and per-program wire feedback out.
These tests drive it with hand-built stats dicts (the runtime's shape,
see ``Diagnostics.record_parallel``) so each estimator is pinned
without spinning up a pool.
"""

import json

from repro.planner.calibration import (
    DECAY,
    OUTLIER_MIN_SAMPLES,
    PAYLOAD_SAMPLE_FLOOR,
    CalibrationStore,
    ReplanContext,
)
from repro.planner.machine import DEFAULT_MACHINE


def region(header="for.header.0", *, seconds=0.5, worker_seconds=(0.1, 0.1),
           worker_steps=(100, 100), payloads=0, payload_bytes=0,
           prelude_hits=0, prelude_bytes_saved=0, backend="processes",
           retries=0, failovers=0, faults_injected=0, **extra):
    """One runtime region-stats dict, minimally populated."""
    stats = {
        "header": header,
        "backend": backend,
        "schedule": "static",
        "workers": len(worker_seconds),
        "chunk": 1,
        "iterations": sum(worker_steps),
        "seconds": seconds,
        "per_worker": [
            {"worker": i, "iterations": steps, "steps": steps,
             "seconds": secs}
            for i, (steps, secs) in enumerate(
                zip(worker_steps, worker_seconds)
            )
        ],
        "payloads": payloads,
        "payload_bytes": payload_bytes,
        "prelude_hits": prelude_hits,
        "prelude_bytes_saved": prelude_bytes_saved,
        "retries": retries,
        "failovers": failovers,
        "faults_injected": faults_injected,
    }
    stats.update(extra)
    return stats


class TestEwma:
    def test_first_sample_is_taken_verbatim(self):
        store = CalibrationStore()
        assert store._update("threads_region_cost", 1000.0)
        assert store.coefficients["threads_region_cost"]["value"] == 1000.0

    def test_later_samples_decay(self):
        store = CalibrationStore()
        store._update("threads_region_cost", 1000.0)
        store._update("threads_region_cost", 2000.0)
        expected = (1 - DECAY) * 1000.0 + DECAY * 2000.0
        assert store.coefficients["threads_region_cost"]["value"] == expected

    def test_unusable_samples_rejected(self):
        store = CalibrationStore()
        for bad in (0.0, -1.0, float("nan"), float("inf"), None, True):
            assert not store._update("compiled_speedup", bad)
        assert not store.observed

    def test_outliers_rejected_after_settling(self):
        store = CalibrationStore()
        for _ in range(OUTLIER_MIN_SAMPLES):
            store._update("payload_cost_per_byte", 0.01)
        assert not store._update("payload_cost_per_byte", 10.0)  # 1000x
        entry = store.coefficients["payload_cost_per_byte"]
        assert entry["rejected"] == 1
        assert entry["value"] == 0.01

    def test_outliers_accepted_while_settling(self):
        # Before OUTLIER_MIN_SAMPLES the estimate is not trusted yet.
        store = CalibrationStore()
        store._update("payload_cost_per_byte", 0.01)
        assert store._update("payload_cost_per_byte", 10.0)


class TestObserveRun:
    def test_processes_overhead_splits_dispatch_and_wire(self):
        store = CalibrationStore()
        assert store.observe_run([
            region(seconds=1.0, worker_seconds=(0.25, 0.25),
                   worker_steps=(1000, 1000), payloads=2,
                   payload_bytes=10_000),
        ])
        measured = store.measured_coefficients()
        assert "threads_region_cost" in measured
        assert "payload_cost_per_byte" in measured
        assert "serial_region_cost" in measured
        # rate = 2000 steps / 0.5s = 4000 steps/s; overhead 0.75s ->
        # 3000 steps, half to dispatch, half over 10k bytes.
        assert measured["threads_region_cost"][0] == 1500.0
        assert measured["payload_cost_per_byte"][0] == 1500.0 / 10_000

    def test_tiny_payloads_yield_no_per_byte_sample(self):
        # A warm repeat ships a prelude delta below the floor: all the
        # overhead is fixed dispatch, none of it prices the wire.
        store = CalibrationStore()
        store.observe_run([
            region(seconds=1.0, worker_seconds=(0.25, 0.25),
                   worker_steps=(1000, 1000), payloads=2,
                   payload_bytes=PAYLOAD_SAMPLE_FLOOR - 1),
        ])
        measured = store.measured_coefficients()
        assert "payload_cost_per_byte" not in measured
        # Full (not half) overhead goes to the dispatch bar: 3000 steps.
        assert measured["threads_region_cost"][0] == 3000.0

    def test_threads_overhead_is_all_dispatch(self):
        store = CalibrationStore()
        store.observe_run([
            region(backend="threads", seconds=0.5,
                   worker_seconds=(0.25, 0.25), worker_steps=(500, 500)),
        ])
        measured = store.measured_coefficients()
        assert "payload_cost_per_byte" not in measured
        assert measured["threads_region_cost"][0] == 0.25 * 2000.0

    def test_recovery_inflated_regions_are_excluded(self):
        store = CalibrationStore()
        accepted = store.observe_run([
            region(seconds=5.0, worker_seconds=(0.1, 0.1),
                   worker_steps=(100, 100), payloads=2,
                   payload_bytes=1000, retries=1),
            region(seconds=5.0, worker_seconds=(0.1, 0.1),
                   worker_steps=(100, 100), payloads=2,
                   payload_bytes=1000, failovers=1),
            region(seconds=5.0, worker_seconds=(0.1, 0.1),
                   worker_steps=(100, 100), payloads=2,
                   payload_bytes=1000, faults_injected=1),
        ])
        assert not accepted
        assert not store.observed
        assert store.runs == 0

    def test_untimed_workers_produce_no_samples(self):
        # The simulated oracle's workers carry seconds=0.0.
        store = CalibrationStore()
        accepted = store.observe_run([
            region(backend="simulated(seed=0)", seconds=0.001,
                   worker_seconds=(0.0, 0.0), worker_steps=(100, 100)),
        ])
        assert not accepted

    def test_version_moves_only_on_acceptance(self):
        store = CalibrationStore()
        before = store.version
        store.observe_run([region(retries=1)])
        assert store.version == before
        store.observe_run([
            region(seconds=1.0, worker_seconds=(0.2, 0.2),
                   worker_steps=(500, 500), payloads=2,
                   payload_bytes=5000),
        ])
        assert store.version == before + 1

    def test_prelude_discount_from_saved_bytes(self):
        store = CalibrationStore()
        store.observe_run([
            region(seconds=1.0, worker_seconds=(0.2, 0.2),
                   worker_steps=(500, 500), payloads=4,
                   payload_bytes=1000, prelude_hits=3,
                   prelude_bytes_saved=3000),
        ])
        value, _ = store.measured_coefficients()["prelude_cache_discount"]
        assert value == 3000 / 4000

    def test_region_feedback_is_per_program(self):
        store = CalibrationStore()
        store.observe_run(
            [region(payloads=2, payload_bytes=8192, prelude_hits=1,
                    worker_seconds=(0.2, 0.2), worker_steps=(500, 500),
                    seconds=1.0)],
            program_key="prog-a",
        )
        payload_bytes, prelude_warm, _ = store.region_feedback("prog-a")
        assert payload_bytes == {"for.header.0": 4096}
        assert prelude_warm == {"for.header.0": 0.5}
        assert store.region_feedback("prog-b") == ({}, {}, {})


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        path = str(tmp_path / "nested" / "profile.json")
        store = CalibrationStore(path)
        store.observe_run(
            [region(seconds=1.0, worker_seconds=(0.2, 0.2),
                    worker_steps=(500, 500), payloads=2,
                    payload_bytes=5000)],
            program_key="prog-a",
        )
        saved = store.save()
        assert saved == path

        warm = CalibrationStore(path)
        assert warm.measured_coefficients() == store.measured_coefficients()
        assert warm.region_feedback("prog-a") == \
            store.region_feedback("prog-a")
        assert warm.runs == store.runs

    def test_missing_file_is_empty(self, tmp_path):
        store = CalibrationStore(str(tmp_path / "absent.json"))
        assert not store.observed

    def test_corrupt_file_is_empty(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text("{not json")
        assert not CalibrationStore(str(path)).observed

    def test_stale_schema_is_ignored(self, tmp_path):
        path = tmp_path / "stale.json"
        store = CalibrationStore()
        store._update("compiled_speedup", 2.0)
        data = store.to_dict()
        data["schema"] = -1
        path.write_text(json.dumps(data))
        assert not CalibrationStore(str(path)).observed

    def test_unknown_coefficients_skipped_on_load(self, tmp_path):
        path = tmp_path / "future.json"
        store = CalibrationStore()
        store._update("compiled_speedup", 2.0)
        data = store.to_dict()
        data["machine"]["quantum_dispatch_cost"] = {
            "value": 1.0, "samples": 5, "rejected": 0
        }
        path.write_text(json.dumps(data))
        warm = CalibrationStore(str(path))
        assert set(warm.measured_coefficients()) == {"compiled_speedup"}

    def test_describe_mentions_static_and_measured(self):
        store = CalibrationStore()
        store._update("compiled_speedup", 2.0)
        text = store.describe(DEFAULT_MACHINE)
        assert "compiled_speedup" in text
        assert "(static)" in text  # the never-observed coefficients


class TestReplanContext:
    def test_default_store_is_private(self):
        a = ReplanContext(function=None, module=None, pdg=None,
                          pspdg=None, plan=None, level=None, machine=None)
        b = ReplanContext(function=None, module=None, pdg=None,
                          pspdg=None, plan=None, level=None, machine=None)
        assert a.store is not b.store

    def test_explicit_store_is_shared(self):
        store = CalibrationStore()
        ctx = ReplanContext(function=None, module=None, pdg=None,
                            pspdg=None, plan=None, level=None,
                            machine=None, store=store)
        assert ctx.store is store
