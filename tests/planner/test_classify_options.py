"""Loop classification and Fig. 13 option counting."""

import pytest

from repro.frontend import compile_source
from repro.planner import (
    DEFAULT_MACHINE,
    MachineModel,
    classify_loop,
    doall_options,
    dswp_options,
    fig13_options,
    helix_options,
    options_for_loop,
    prepare_benchmark,
)


def setup_for(source, name="t"):
    return prepare_benchmark(name, compile_source(source))


AFFINE = (
    "global a: int[16];\n"
    "func main() { pragma omp for\nfor i in 0..16 { a[i] = i; } }"
)

RECURRENCE = (
    "global a: int[16];\n"
    "func main() { for i in 1..16 { a[i] = a[i - 1] + 1; } print(a[15]); }"
)

INDIRECT = (
    "global a: int[16];\nglobal k: int[16];\n"
    "func main() { for i in 0..16 { a[k[i]] = a[k[i]] + 1; } }"
)


class TestClassification:
    def test_affine_loop_is_doall_for_all_views(self):
        setup = setup_for(AFFINE)
        loop = setup.loops[0]
        for view in setup.views.values():
            classification = classify_loop(view, loop)
            assert classification.doall_legal, view.name

    def test_recurrence_never_doall(self):
        setup = setup_for(RECURRENCE)
        loop = setup.loops[0]
        for view in setup.views.values():
            classification = classify_loop(view, loop)
            assert not classification.doall_legal, view.name
            assert classification.sequential_sccs

    def test_indirect_update_doall_only_with_annotation(self):
        setup = setup_for(INDIRECT)
        loop = setup.loops[0]
        assert not classify_loop(setup.views["PDG"], loop).doall_legal

        annotated = INDIRECT.replace(
            "func main() { for", "func main() { pragma omp for\nfor"
        )
        setup2 = setup_for(annotated)
        loop2 = setup2.loops[0]
        assert classify_loop(setup2.views["J&K"], loop2).doall_legal
        assert classify_loop(setup2.views["PS-PDG"], loop2).doall_legal

    def test_unknown_trip_count_blocks_doall(self):
        setup = setup_for(
            "global a: int[16];\n"
            "func main() { var n: int = 8;\n"
            "for i in 0..n { a[i] = i; } }"
        )
        loop = setup.loops[0]
        classification = classify_loop(setup.views["PDG"], loop)
        assert not classification.trip_count_known
        assert not classification.doall_legal

    def test_critical_work_is_serialized_not_sequential(self):
        setup = setup_for(
            "global h: int[4];\n"
            "func main() {\n"
            "  pragma omp parallel_for\n"
            "  for i in 0..8 {\n"
            "    pragma omp critical\n"
            "    { h[i % 4] = h[i % 4] + 1; }\n"
            "  }\n"
            "}"
        )
        loop = setup.loops[0]
        classification = classify_loop(setup.views["PS-PDG"], loop)
        assert classification.doall_legal
        assert classification.serialized_uids


class TestOptionFormulas:
    def test_doall_options_formula(self):
        assert doall_options(DEFAULT_MACHINE) == 56 * 8

    def test_doall_options_scale_with_machine(self):
        machine = MachineModel(cores=4, chunk_sizes=(1, 2))
        assert doall_options(machine) == 8

    def test_helix_options_proportional_to_sequential_sccs(self):
        setup = setup_for(RECURRENCE)
        loop = setup.loops[0]
        classification = classify_loop(setup.views["PDG"], loop)
        k = len(classification.sequential_sccs)
        assert helix_options(classification, DEFAULT_MACHINE) == k * 56

    def test_dswp_needs_two_stages(self):
        setup = setup_for(RECURRENCE)
        loop = setup.loops[0]
        classification = classify_loop(setup.views["PDG"], loop)
        options = dswp_options(classification, DEFAULT_MACHINE)
        assert options == min(len(classification.sccs), 56) - 1

    def test_doall_loop_counts_only_doall(self):
        setup = setup_for(AFFINE)
        loop = setup.loops[0]
        classification = classify_loop(setup.views["PDG"], loop)
        assert options_for_loop(classification) == 448


class TestFig13Reports:
    def test_report_includes_all_abstractions(self):
        setup = setup_for(AFFINE)
        report = fig13_options(setup)
        assert set(report.totals) == {"OpenMP", "PDG", "J&K", "PS-PDG"}

    def test_openmp_counts_only_annotated_loops(self):
        setup = setup_for(
            "global a: int[16];\nglobal b: int[16];\n"
            "func main() {\n"
            "  pragma omp for\n"
            "  for i in 0..16 { a[i] = i; }\n"
            "  for j in 0..16 { b[j] = j; }\n"
            "}"
        )
        report = fig13_options(setup)
        assert report.totals["OpenMP"] == 448
        assert report.totals["PDG"] == 2 * 448

    def test_coverage_threshold_filters_loops(self):
        setup = setup_for(
            "global a: int[200];\nglobal b: int[4];\n"
            "func main() {\n"
            "  for i in 0..200 { a[i] = i; }\n"
            "  for j in 0..1 { b[j] = j; }\n"
            "}"
        )
        report = fig13_options(setup, min_coverage=0.05)
        assert len(report.per_loop) == 1
