"""Ideal-machine critical path under explicit plans."""

from repro.frontend import compile_source
from repro.planner import (
    CriticalPathEvaluator,
    LoopPlan,
    ProgramPlan,
    TECH_DOALL,
    TECH_DSWP,
    TECH_HELIX,
    fig14_critical_paths,
    loop_uid_map,
    openmp_source_plan,
    prepare_benchmark,
)


def profiled(source):
    setup = prepare_benchmark("t", compile_source(source))
    return setup


def test_sequential_critical_path_is_total_work():
    setup = profiled(
        "global a: int[16];\nfunc main() { for i in 0..16 { a[i] = i; } }"
    )
    plan = ProgramPlan("seq", {}, loop_uid_map(setup.function))
    cp = CriticalPathEvaluator(setup.profile, plan).evaluate()
    assert cp == setup.profile.total()


def test_doall_collapses_iterations_to_max():
    setup = profiled(
        "global a: int[16];\nfunc main() { for i in 0..16 { a[i] = i; } }"
    )
    uid_map = loop_uid_map(setup.function)
    header = setup.loops[0].header.name
    plan = ProgramPlan("p", {header: LoopPlan(TECH_DOALL)}, uid_map)
    cp = CriticalPathEvaluator(setup.profile, plan).evaluate()
    sequential = setup.profile.total()
    assert cp < sequential / 4


def test_doall_with_serialized_work_bounded_by_lock_sum():
    setup = profiled(
        "global h: int[4];\n"
        "func main() {\n"
        "  pragma omp parallel_for\n"
        "  for i in 0..16 {\n"
        "    pragma omp critical\n"
        "    { h[i % 4] = h[i % 4] + 1; }\n"
        "  }\n"
        "}"
    )
    results = fig14_critical_paths(setup)
    openmp_cp = results["OpenMP"]["critical_path"]
    sequential = results["Sequential"]["critical_path"]
    # Lock-serialized work keeps the plan well above max-iteration cost,
    # but it still beats fully sequential execution.
    assert openmp_cp < sequential
    assert results["PS-PDG"]["critical_path"] <= openmp_cp


def test_helix_charges_sequential_segments_per_iteration():
    setup = profiled(
        "global a: int[16];\n"
        "func main() { var s: int = 0;\n"
        "for i in 0..16 { s = s + a[i]; a[i] = i; } print(s); }"
    )
    uid_map = loop_uid_map(setup.function)
    header = setup.loops[0].header.name
    loop_uids = uid_map[header]
    # Pretend half the loop is a sequential segment.
    seq = frozenset(list(loop_uids)[: len(loop_uids) // 2])
    plan = ProgramPlan(
        "p", {header: LoopPlan(TECH_HELIX, sequential_uids=seq)}, uid_map
    )
    cp = CriticalPathEvaluator(setup.profile, plan).evaluate()
    assert cp < setup.profile.total()
    plan_all_seq = ProgramPlan(
        "p2",
        {header: LoopPlan(TECH_HELIX, sequential_uids=loop_uids)},
        uid_map,
    )
    cp_all = CriticalPathEvaluator(setup.profile, plan_all_seq).evaluate()
    assert cp <= cp_all


def test_dswp_bounded_by_slowest_stage_plus_fill():
    setup = profiled(
        "global a: int[16];\nglobal b: int[16];\n"
        "func main() { for i in 1..16 {\n"
        "  a[i] = a[i - 1] + 1;\n"
        "  b[i] = a[i] * 2;\n"
        "} print(b[15]); }"
    )
    uid_map = loop_uid_map(setup.function)
    header = setup.loops[0].header.name
    uids = sorted(uid_map[header])
    half = len(uids) // 2
    plan = ProgramPlan(
        "p",
        {
            header: LoopPlan(
                TECH_DSWP,
                stage_groups=(
                    frozenset(uids[:half]),
                    frozenset(uids[half:]),
                ),
            )
        },
        uid_map,
    )
    cp = CriticalPathEvaluator(setup.profile, plan).evaluate()
    assert cp < setup.profile.total()


def test_openmp_source_plan_uses_annotations():
    setup = profiled(
        "global a: int[16];\n"
        "func main() { pragma omp parallel for\n"
        "for i in 0..16 { a[i] = i; } }"
    )
    plan = openmp_source_plan(setup.function)
    assert len(plan.loop_plans) == 1
    (loop_plan,) = plan.loop_plans.values()
    assert loop_plan.technique == TECH_DOALL


def test_fig14_speedups_relative_to_openmp():
    setup = profiled(
        "global a: int[32];\nglobal k: int[32];\n"
        "func main() {\n"
        "  pragma omp parallel for\n"
        "  for i in 0..32 { a[k[i]] = a[k[i]] + 1; }\n"
        "}"
    )
    results = fig14_critical_paths(setup)
    assert results["OpenMP"]["speedup"] == 1.0
    # The PS-PDG never loses parallelism the programmer expressed.
    assert results["PS-PDG"]["speedup"] >= 1.0
    # The sequential PDG cannot prove the indirect update parallel.
    assert results["PDG"]["speedup"] < 1.0


def test_nested_parallelism_recursion():
    setup = profiled(
        "global a: int[64];\n"
        "func main() {\n"
        "  for t in 0..2 {\n"
        "    pragma omp for\n"
        "    for i in 0..64 { a[i] = a[i] + t; }\n"
        "  }\n"
        "}"
    )
    results = fig14_critical_paths(setup)
    # J&K/PS-PDG exploit the inner developer loop under the sequential
    # outer loop.
    assert results["J&K"]["critical_path"] <= results["OpenMP"][
        "critical_path"
    ]
