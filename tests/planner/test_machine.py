"""MachineModel edge cases + the serializable round-trip.

The calibration profile stores machine models as JSON, so
``to_dict``/``from_dict`` must round-trip every field and refuse
mismatched schema versions.  The cost helpers' edge cases (zero-trip
loops, fully-warm preludes, non-positive payloads) are what the
calibration store's estimators can legitimately produce, so they are
pinned here rather than discovered in a replanning stack trace.
"""

import dataclasses

import pytest

from repro.planner.machine import DEFAULT_MACHINE, MACHINE_SCHEMA, MachineModel


class TestSerializationRoundTrip:
    def test_round_trip_defaults(self):
        model = MachineModel()
        assert MachineModel.from_dict(model.to_dict()) == model

    def test_round_trip_custom_fields(self):
        model = MachineModel(
            cores=8,
            chunk_sizes=(2, 4),
            serial_region_cost=7,
            threads_region_cost=3000,
            payload_cost_per_byte=0.5,
            prelude_cache_discount=0.25,
            compiled_speedup=1.5,
        )
        clone = MachineModel.from_dict(model.to_dict())
        assert clone == model
        assert clone.chunk_sizes == (2, 4)  # list -> tuple restored

    def test_to_dict_is_json_shaped(self):
        import json

        data = MachineModel().to_dict()
        assert data["schema"] == MACHINE_SCHEMA
        assert json.loads(json.dumps(data)) == data

    def test_from_dict_rejects_wrong_schema(self):
        data = MachineModel().to_dict()
        data["schema"] = MACHINE_SCHEMA + 1
        with pytest.raises(ValueError, match="schema"):
            MachineModel.from_dict(data)

    def test_from_dict_rejects_missing_schema(self):
        data = MachineModel().to_dict()
        del data["schema"]
        with pytest.raises(ValueError):
            MachineModel.from_dict(data)

    def test_from_dict_ignores_unknown_keys(self):
        data = MachineModel().to_dict()
        data["coefficient_from_the_future"] = 42
        assert MachineModel.from_dict(data) == MachineModel()


class TestSerializationCost:
    def test_zero_bytes_is_free(self):
        assert DEFAULT_MACHINE.serialization_cost(0) == 0

    def test_none_bytes_is_free(self):
        assert DEFAULT_MACHINE.serialization_cost(None) == 0

    def test_negative_bytes_is_free(self):
        assert DEFAULT_MACHINE.serialization_cost(-1024) == 0

    def test_positive_bytes_cost_at_least_one(self):
        # 1 byte * 0.01/byte truncates to 0; the clamp keeps it 1.
        assert DEFAULT_MACHINE.serialization_cost(1) == 1

    def test_fully_warm_dispatch_keeps_paying_something(self):
        model = MachineModel(payload_cost_per_byte=0.01,
                             prelude_cache_discount=0.75)
        cold = model.serialization_cost(100_000, warm_fraction=0.0)
        warm = model.serialization_cost(100_000, warm_fraction=1.0)
        assert warm == cold // 4  # 1 - 0.75 of the per-byte cost
        assert warm >= 1

    def test_warm_fraction_clamps_out_of_range(self):
        model = MachineModel()
        assert model.serialization_cost(4096, warm_fraction=2.0) == \
            model.serialization_cost(4096, warm_fraction=1.0)
        assert model.serialization_cost(4096, warm_fraction=-1.0) == \
            model.serialization_cost(4096, warm_fraction=0.0)


class TestTileIterations:
    def test_zero_trip_loop_has_no_constraint(self):
        assert DEFAULT_MACHINE.tile_iterations(1000, 0) is None

    def test_unknown_cost_has_no_constraint(self):
        assert DEFAULT_MACHINE.tile_iterations(None, 100) is None
        assert DEFAULT_MACHINE.tile_iterations(0, 100) is None

    def test_heavy_iterations_need_no_tiling(self):
        # Per-iteration work already above the dispatch overhead.
        assert DEFAULT_MACHINE.tile_iterations(10_000_000, 10) is None

    def test_tile_never_exceeds_trip(self):
        tile = DEFAULT_MACHINE.tile_iterations(100, 10)
        assert tile == 10  # overhead wants more, trip caps it

    def test_light_iterations_get_a_tile(self):
        # cost 1000 over trip 1000 -> 1 step/iter -> tile = threads bar.
        model = MachineModel(threads_region_cost=64)
        assert model.tile_iterations(1000, 1000) == 64


class TestCalibratedMachineStaysLegal:
    """Property: calibration can never produce a non-positive coefficient."""

    def test_calibrated_coefficients_stay_positive(self):
        import random

        from repro.planner.calibration import CalibrationStore

        rng = random.Random(0xC0FFEE)
        store = CalibrationStore()
        names = (
            "payload_cost_per_byte", "serial_region_cost",
            "threads_region_cost", "prelude_cache_discount",
            "compiled_speedup",
        )
        for _ in range(500):
            name = rng.choice(names)
            # Adversarial samples: zeros, negatives, denormals, huge.
            sample = rng.choice([
                0.0, -rng.random() * 1e6, rng.random() * 1e-12,
                rng.random() * 1e9, rng.random(), float("inf"),
                float("nan"),
            ])
            store._update(name, sample)
        machine = store.calibrated_machine(DEFAULT_MACHINE)
        assert machine.payload_cost_per_byte > 0
        assert machine.serial_region_cost >= 1
        assert machine.threads_region_cost >= 1
        assert 0.0 < machine.prelude_cache_discount < 1.0
        assert machine.compiled_speedup > 0
        # And the projected model still round-trips.
        assert MachineModel.from_dict(machine.to_dict()) == machine

    def test_replace_preserves_int_typing(self):
        from repro.planner.calibration import CalibrationStore

        store = CalibrationStore()
        store._update("threads_region_cost", 1234.56)
        machine = store.calibrated_machine(DEFAULT_MACHINE)
        assert isinstance(machine.threads_region_cost, int)
        assert machine.threads_region_cost == 1235

    def test_effective_region_cost_never_zero(self):
        model = MachineModel(compiled_speedup=100.0)
        assert model.effective_region_cost(5, compiled=True) == 1
        assert model.effective_region_cost(None, compiled=True) is None

    def test_fields_unchanged_without_observations(self):
        from repro.planner.calibration import CalibrationStore

        base = dataclasses.replace(DEFAULT_MACHINE, cores=3)
        assert CalibrationStore().calibrated_machine(base) is base
