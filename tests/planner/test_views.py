"""Dependence views: what PDG, J&K, and PS-PDG each see."""

from repro.frontend import compile_source
from repro.planner import prepare_benchmark


def setup_for(source):
    return prepare_benchmark("t", compile_source(source))


REDUCTION_UNDER_WORKSHARING = (
    "func main() { var s: int = 0;\n"
    "pragma omp for reduction(+: s)\n"
    "for i in 0..8 { s = s + i; }\nprint(s); }"
)

PRIVATE_ARRAY = (
    "global v: int[64];\n"
    "func main() {\n"
    "  var t: int[8];\n"
    "  pragma omp parallel_for private(t)\n"
    "  for p in 0..8 {\n"
    "    for j in 0..8 { t[j] = p + j; }\n"
    "    for j in 0..8 { v[p * 8 + j] = t[j]; }\n"
    "  }\n"
    "}"
)


def carried_count(setup, view_name, loop_index=0):
    loop = [l for l in setup.loops if l.parent is None][loop_index]
    return len(setup.views[view_name].carried_edges(loop))


def test_views_agree_on_unannotated_code():
    setup = setup_for(
        "global a: int[8];\nglobal k: int[8];\n"
        "func main() { for i in 0..8 { a[k[i]] = a[k[i]] + 1; } }"
    )
    assert carried_count(setup, "PDG") == carried_count(setup, "J&K")
    assert carried_count(setup, "PDG") == carried_count(setup, "PS-PDG")


def test_jk_between_pdg_and_pspdg():
    setup = setup_for(PRIVATE_ARRAY)
    pdg = carried_count(setup, "PDG")
    jk = carried_count(setup, "J&K")
    pspdg = carried_count(setup, "PS-PDG")
    assert pspdg <= jk <= pdg
    # The private-array semantics is invisible to J&K: it keeps carried
    # dependences on t that the PS-PDG removed.
    assert pspdg < jk


def test_scalar_reduction_breakable_by_all_views():
    setup = setup_for(REDUCTION_UNDER_WORKSHARING)
    # The textbook reduction recognition applies to every view, so no
    # carried dependences remain anywhere.
    for name in ("PDG", "J&K", "PS-PDG"):
        assert carried_count(setup, name) == 0, name


def test_serialized_uids_only_in_pspdg_view():
    setup = setup_for(
        "global h: int[4];\n"
        "func main() {\n"
        "  pragma omp parallel_for\n"
        "  for i in 0..8 {\n"
        "    pragma omp critical\n"
        "    { h[i % 4] = h[i % 4] + 1; }\n"
        "  }\n"
        "}"
    )
    loop = setup.loops[0]
    assert setup.views["PDG"].serialized_uids(loop) == frozenset()
    assert setup.views["J&K"].serialized_uids(loop) == frozenset()
    serialized = setup.views["PS-PDG"].serialized_uids(loop)
    assert serialized
    # The serialized set is the locked dataflow chain, not the whole
    # region: it must be smaller than the loop body.
    loop_uids = {i.uid for i in loop.instructions()}
    assert serialized < loop_uids


def test_view_names():
    setup = setup_for("func main() { for i in 0..4 { } }")
    assert {v.name for v in setup.views.values()} == {
        "PDG",
        "J&K",
        "PS-PDG",
    }
