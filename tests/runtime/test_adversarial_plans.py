"""Adversarial plans: the conformance harness must be able to *fail*.

Each test hand-builds a deliberately wrong :class:`LoopParallelization`
(missing privatization, missing reduction, racy lastprivate, unseeded
firstprivate) and runs it under the ``simulated`` oracle across seeds.
A wrong plan must either raise (a detected fault) or diverge from the
sequential output on at least one seed — the same comparator the
conformance suite uses.  Control cases check that the *correct* recipe
for each program never diverges, so a failure here means the oracle has
lost its teeth, not that the programs are broken.
"""

from repro.emulator import run_module
from repro.frontend import compile_source
from repro.runtime import (
    LoopParallelization,
    parallelization_from_annotation,
    run_parallel,
)
from repro.util.errors import ReproError
from support.conformance import outputs_close

SEEDS = range(10)
WORKERS = 4

MISSING_REDUCTION = """
func main() {
  var s: int = 0;
  pragma omp parallel_for reduction(+: s)
  for i in 0..64 {
    s = s + i;
  }
  print(s);
}
"""

MISSING_PRIVATIZATION = """
global v: int[64];

func main() {
  var t: int[8];
  pragma omp parallel_for private(t)
  for p in 0..8 {
    for j in 0..8 { t[j] = p * 8 + j; }
    for j in 0..8 { v[p * 8 + j] = t[j] * 2; }
  }
  print(v[0], v[31], v[63]);
}
"""

RACY_LASTPRIVATE = """
global a: int[16];

func main() {
  var v: int = 0;
  for i in 0..16 { a[i] = i * 3; }
  pragma omp parallel_for lastprivate(v)
  for j in 0..16 {
    v = a[j];
  }
  print(v);
}
"""

UNSEEDED_FIRSTPRIVATE = """
global a: int[16];

func main() {
  var seed: int = 5;
  pragma omp parallel_for firstprivate(seed)
  for i in 0..16 {
    a[i] = seed + i;
  }
  print(a[0], a[15]);
}
"""


def _loop_header(function):
    return next(
        a.loop_header
        for a in function.annotations
        if a.loop_header is not None
    )


def _divergences(source, recipe_builder, seeds=SEEDS, workers=WORKERS):
    """How many seeds produce a fault or a non-sequential result."""
    expected = run_module(compile_source(source)).output
    count = 0
    for seed in seeds:
        module = compile_source(source)
        recipes = recipe_builder(module)
        try:
            result = run_parallel(
                module, recipes, workers=workers, seed=seed
            )
        except ReproError:
            count += 1  # a detected fault is a caught wrong plan
            continue
        if not outputs_close(result.output, expected):
            count += 1
    return count


def _correct_recipes(module):
    function = module.function("main")
    return [
        parallelization_from_annotation(annotation, function)
        for annotation in function.annotations
        if annotation.directive.declares_loop_independence()
        and annotation.loop_header is not None
    ]


def _bare_recipe(module):
    """The wrong plan: parallelize with no data-sharing clauses at all."""
    return [LoopParallelization(header=_loop_header(module.function("main")))]


class TestWrongPlansAreCaught:
    def test_missing_reduction_diverges(self):
        assert _divergences(MISSING_REDUCTION, _bare_recipe) > 0

    def test_missing_privatization_diverges(self):
        assert _divergences(MISSING_PRIVATIZATION, _bare_recipe) > 0

    def test_racy_lastprivate_diverges(self):
        assert _divergences(RACY_LASTPRIVATE, _bare_recipe) > 0

    def test_unseeded_firstprivate_diverges_every_seed(self):
        def zero_seeded(module):
            function = module.function("main")
            header = _loop_header(function)
            annotation = next(
                a for a in function.annotations if a.loop_header == header
            )
            storage = annotation.binding("seed")
            # Privatized but *not* seeded from the shared value: every
            # worker computes from 0 instead of 5, deterministically wrong.
            return [
                LoopParallelization(header=header, privatized=[storage])
            ]

        assert _divergences(UNSEEDED_FIRSTPRIVATE, zero_seeded) == len(
            list(SEEDS)
        )


class TestCorrectPlansAreNotFlagged:
    """The oracle's teeth cut the right way: correct recipes never diverge."""

    def test_correct_recipes_conform(self):
        for source in (
            MISSING_REDUCTION,
            MISSING_PRIVATIZATION,
            RACY_LASTPRIVATE,
            UNSEEDED_FIRSTPRIVATE,
        ):
            assert _divergences(source, _correct_recipes) == 0
