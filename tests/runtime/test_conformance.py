"""Differential conformance: every backend vs the sequential emulator.

For every NAS workload, the PS-PDG-chosen plan's DOALL loops run under
all three execution backends x {1, 2, 4, 8} workers x {static, dynamic,
guided} schedules x 3 seeds, and every run must reproduce the sequential
emulator's output — bitwise for ints, :func:`math.isclose` for float
reductions (per-worker partial results may reassociate).

The ``simulated`` backend is the race-detection oracle (seeds change the
interleaving); for ``threads``/``processes`` the seeds are independent
retrials, and because partitioning and merge order are deterministic,
those retrials must also agree bit-for-bit *with each other*.
"""

import pytest

from repro.opt import OptLevel, optimize_plan
from repro.runtime import run_plan, run_source_plan
from repro.workloads import kernel_names
from repro.workloads.nas import build_session
from support.conformance import (
    describe_mismatch,
    diff_load_balance,
    outputs_close,
    schedule_imbalance,
)

BACKENDS = ("simulated", "threads", "processes")
SCHEDULES = ("static", "dynamic", "guided")
WORKER_COUNTS = (1, 2, 4, 8)
SEEDS = (0, 1, 2)


@pytest.fixture(scope="module")
def kernel_state():
    """Per kernel: (session, PS-PDG plan, sequential output) — built once."""
    state = {}
    for name in kernel_names():
        session = build_session(name)
        state[name] = (session, session.plan("PS-PDG"),
                       session.execution.output)
    return state


@pytest.fixture(scope="module")
def optimized_plans(kernel_state):
    """Per kernel: the PS-PDG plan after the -O2 and -O3 pass pipelines."""
    plans = {}
    for name, (session, plan, _expected) in kernel_state.items():
        plans[name] = {
            level: optimize_plan(
                session.function, session.module, session.pdg,
                session.pspdg, plan, level, loops=session.loops,
            ).plan
            for level in (OptLevel.O2, OptLevel.O3)
        }
    return plans


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("schedule", SCHEDULES)
@pytest.mark.parametrize("kernel", kernel_names())
def test_planned_loops_match_sequential(kernel, schedule, backend,
                                        kernel_state):
    session, plan, expected = kernel_state[kernel]
    for workers in WORKER_COUNTS:
        retrials = []
        for seed in SEEDS:
            result = run_plan(
                session.module,
                session.pspdg,
                plan,
                workers=workers,
                seed=seed,
                backend=backend,
                schedule=schedule,
            )
            assert outputs_close(result.output, expected), (
                f"{kernel} {backend}/{schedule} workers={workers} "
                f"seed={seed}: "
                + describe_mismatch(result.output, expected)
            )
            retrials.append(result.output)
        if backend != "simulated":
            # Deterministic partition + worker-order merge: real-backend
            # retrials agree exactly, including float bit patterns.
            assert all(out == retrials[0] for out in retrials), (
                f"{kernel} {backend}/{schedule} workers={workers}: "
                f"nondeterministic across retrials: {retrials}"
            )


@pytest.mark.parametrize("backend", BACKENDS)
def test_source_plans_match_sequential(backend, kernel_state):
    """The developer's OpenMP plan also conforms on every backend."""
    for kernel in kernel_names():
        session, _plan, expected = kernel_state[kernel]
        for workers in (2, 4):
            result = run_source_plan(
                session.module,
                session.config.function_name,
                workers=workers,
                seed=1,
                backend=backend,
            )
            assert outputs_close(result.output, expected), (
                f"{kernel} source-plan {backend} workers={workers}: "
                + describe_mismatch(result.output, expected)
            )


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("kernel", kernel_names())
def test_opt_levels_conform(kernel, backend, kernel_state, optimized_plans):
    """-O0, -O2, and -O3 produce identical results on every backend.

    The -O2 plan may fuse regions, elide proven-redundant locks, and
    serialize small regions; -O3 adds loop interchange, skewed fusion,
    tiling, and oracle-validated speculation — none of which may change
    a single output value (ints bitwise; float reductions compare with
    isclose, since serializing a reduction changes its association
    order).
    """
    session, plan, expected = kernel_state[kernel]
    for workers in (2, 4):
        for seed in (0, 1):
            runs = [("-O0", plan)] + [
                (level.flag, optimized_plans[kernel][level])
                for level in (OptLevel.O2, OptLevel.O3)
            ]
            for label, the_plan in runs:
                result = run_plan(
                    session.module, session.pspdg, the_plan,
                    workers=workers, seed=seed, backend=backend,
                )
                assert outputs_close(result.output, expected), (
                    f"{kernel} {backend} {label} workers={workers} "
                    f"seed={seed}: "
                    + describe_mismatch(result.output, expected)
                )


def test_opt_never_dispatches_more_payloads(kernel_state, optimized_plans):
    """On ``processes``, rising -O levels never increase pool payloads.

    Counted from the per-worker assignments — the optimizer's dispatch
    structure — because raw ``payloads`` also include miss-retry
    round-trips of the resident-prelude protocol, which depend on pool
    scheduling timing, not on the optimization level.
    """
    for kernel in kernel_names():
        session, plan, _expected = kernel_state[kernel]
        counts = {}
        plans = [("O0", plan)] + [
            (level.flag, optimized_plans[kernel][level])
            for level in (OptLevel.O2, OptLevel.O3)
        ]
        for label, the_plan in plans:
            result = run_plan(
                session.module, session.pspdg, the_plan,
                workers=4, backend="processes",
            )
            counts[label] = sum(
                1
                for region in result.parallel_regions
                if region["payloads"]
                for worker in region["per_worker"]
                if worker["iterations"]
            )
        assert counts["-O2"] <= counts["O0"], (
            f"{kernel}: -O2 dispatched {counts['-O2']} payloads vs "
            f"{counts['O0']} at -O0"
        )
        assert counts["-O3"] <= counts["-O2"], (
            f"{kernel}: -O3 dispatched {counts['-O3']} payloads vs "
            f"{counts['-O2']} at -O2"
        )


def test_load_balance_diff_static_vs_guided(kernel_state):
    """Per-worker step diffing flags no regression between the schedules.

    Partitioning is deterministic, so per-worker step counts are exact;
    ``diff_load_balance`` compares a candidate schedule's worst region
    against a baseline's and flags anything beyond the tolerance factor.
    EP's uniform 256-iteration loop must balance under both static and
    guided (in either direction).
    """
    session, plan, _expected = kernel_state["EP"]
    regions = {}
    for schedule in ("static", "guided"):
        result = run_plan(
            session.module, session.pspdg, plan,
            workers=4, backend="threads", schedule=schedule,
        )
        assert result.parallel_regions
        regions[schedule] = result.parallel_regions
    flagged = diff_load_balance(regions["static"], regions["guided"])
    assert not flagged, f"guided regressed balance vs static: {flagged}"
    flagged = diff_load_balance(regions["guided"], regions["static"])
    assert not flagged, f"static regressed balance vs guided: {flagged}"


def test_load_balance_diff_flags_synthetic_regression():
    """The diff helper actually fires on a skewed per-worker profile."""
    even = [{
        "header": "loop",
        "per_worker": [
            {"worker": i, "iterations": 8, "steps": 100} for i in range(4)
        ],
    }]
    skewed = [{
        "header": "loop",
        "per_worker": [
            {"worker": 0, "iterations": 29, "steps": 2900},
            {"worker": 1, "iterations": 1, "steps": 100},
            {"worker": 2, "iterations": 1, "steps": 100},
            {"worker": 3, "iterations": 1, "steps": 100},
        ],
    }]
    assert schedule_imbalance(even) == pytest.approx(1.0)
    flagged = diff_load_balance(even, skewed)
    assert flagged and flagged[0]["header"] == "loop"
    assert flagged[0]["imbalance"] > 1.5


def test_per_worker_diagnostics_recorded(kernel_state):
    """Runs surface per-region, per-worker timing via the session."""
    session, plan, _expected = kernel_state["EP"]
    result = session.run(plan, workers=4, backend="threads")
    assert result.parallel_regions, "no region stats recorded"
    region = result.parallel_regions[0]
    assert region["backend"] == "threads"
    assert region["workers"] == 4
    assert len(region["per_worker"]) == 4
    assert sum(w["iterations"] for w in region["per_worker"]) == (
        region["iterations"]
    )
    assert sum(w["steps"] for w in region["per_worker"]) > 0
    assert session.diagnostics.parallel_regions  # mirrored for reports
    assert "threads" in session.diagnostics.parallel_report()
