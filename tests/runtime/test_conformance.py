"""Differential conformance: every backend vs the sequential emulator.

For every NAS workload, the PS-PDG-chosen plan's DOALL loops run under
all three execution backends x {1, 2, 4, 8} workers x {static, dynamic,
guided} schedules x 3 seeds, and every run must reproduce the sequential
emulator's output — bitwise for ints, :func:`math.isclose` for float
reductions (per-worker partial results may reassociate).

The ``simulated`` backend is the race-detection oracle (seeds change the
interleaving); for ``threads``/``processes`` the seeds are independent
retrials, and because partitioning and merge order are deterministic,
those retrials must also agree bit-for-bit *with each other*.
"""

import pytest

from repro.runtime import run_plan, run_source_plan
from repro.workloads import kernel_names
from repro.workloads.nas import build_session
from support.conformance import describe_mismatch, outputs_close

BACKENDS = ("simulated", "threads", "processes")
SCHEDULES = ("static", "dynamic", "guided")
WORKER_COUNTS = (1, 2, 4, 8)
SEEDS = (0, 1, 2)


@pytest.fixture(scope="module")
def kernel_state():
    """Per kernel: (session, PS-PDG plan, sequential output) — built once."""
    state = {}
    for name in kernel_names():
        session = build_session(name)
        state[name] = (session, session.plan("PS-PDG"),
                       session.execution.output)
    return state


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("schedule", SCHEDULES)
@pytest.mark.parametrize("kernel", kernel_names())
def test_planned_loops_match_sequential(kernel, schedule, backend,
                                        kernel_state):
    session, plan, expected = kernel_state[kernel]
    for workers in WORKER_COUNTS:
        retrials = []
        for seed in SEEDS:
            result = run_plan(
                session.module,
                session.pspdg,
                plan,
                workers=workers,
                seed=seed,
                backend=backend,
                schedule=schedule,
            )
            assert outputs_close(result.output, expected), (
                f"{kernel} {backend}/{schedule} workers={workers} "
                f"seed={seed}: "
                + describe_mismatch(result.output, expected)
            )
            retrials.append(result.output)
        if backend != "simulated":
            # Deterministic partition + worker-order merge: real-backend
            # retrials agree exactly, including float bit patterns.
            assert all(out == retrials[0] for out in retrials), (
                f"{kernel} {backend}/{schedule} workers={workers}: "
                f"nondeterministic across retrials: {retrials}"
            )


@pytest.mark.parametrize("backend", BACKENDS)
def test_source_plans_match_sequential(backend, kernel_state):
    """The developer's OpenMP plan also conforms on every backend."""
    for kernel in kernel_names():
        session, _plan, expected = kernel_state[kernel]
        for workers in (2, 4):
            result = run_source_plan(
                session.module,
                session.config.function_name,
                workers=workers,
                seed=1,
                backend=backend,
            )
            assert outputs_close(result.output, expected), (
                f"{kernel} source-plan {backend} workers={workers}: "
                + describe_mismatch(result.output, expected)
            )


def test_per_worker_diagnostics_recorded(kernel_state):
    """Runs surface per-region, per-worker timing via the session."""
    session, plan, _expected = kernel_state["EP"]
    result = session.run(plan, workers=4, backend="threads")
    assert result.parallel_regions, "no region stats recorded"
    region = result.parallel_regions[0]
    assert region["backend"] == "threads"
    assert region["workers"] == 4
    assert len(region["per_worker"]) == 4
    assert sum(w["iterations"] for w in region["per_worker"]) == (
        region["iterations"]
    )
    assert sum(w["steps"] for w in region["per_worker"]) > 0
    assert session.diagnostics.parallel_regions  # mirrored for reports
    assert "threads" in session.diagnostics.parallel_report()
