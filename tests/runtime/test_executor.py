"""Simulated parallel runtime: plans must preserve sequential semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.emulator import run_module
from repro.frontend import compile_source
from repro.runtime import (
    LoopParallelization,
    run_parallel,
    run_source_plan,
)

REDUCTION = """
func main() {
  var s: int = 0;
  pragma omp parallel_for reduction(+: s)
  for i in 0..40 {
    s = s + i * i;
  }
  print(s);
}
"""

CRITICAL_HISTOGRAM = """
global key: int[64];
global hist: int[8];

func main() {
  for s in 0..64 {
    key[s] = (s * 37 + 11) % 8;
  }
  pragma omp for
  for j in 0..64 {
    var b: int = key[j];
    pragma omp critical
    { hist[b] = hist[b] + 1; }
  }
  print(hist[0], hist[1], hist[2], hist[3]);
}
"""

LASTPRIVATE = """
global a: int[16];

func main() {
  var v: int = 0;
  for i in 0..16 { a[i] = i * 3; }
  pragma omp parallel_for lastprivate(v)
  for j in 0..16 {
    v = a[j];
  }
  print(v);
}
"""

FIRSTPRIVATE = """
global a: int[16];

func main() {
  var seed: int = 5;
  pragma omp parallel_for firstprivate(seed)
  for i in 0..16 {
    a[i] = seed + i;
  }
  print(a[0], a[15]);
}
"""

PRIVATE_ARRAY = """
global v: int[64];

func main() {
  var t: int[8];
  pragma omp parallel_for private(t)
  for p in 0..8 {
    for j in 0..8 { t[j] = p * 8 + j; }
    for j in 0..8 { v[p * 8 + j] = t[j] * 2; }
  }
  print(v[0], v[31], v[63]);
}
"""


def assert_matches_sequential(source, seeds=(0, 1, 7), workers=(2, 4)):
    module = compile_source(source)
    expected = run_module(module).formatted_output()
    for worker_count in workers:
        for seed in seeds:
            result = run_source_plan(
                module, workers=worker_count, seed=seed
            )
            assert result.formatted_output() == expected, (
                f"workers={worker_count} seed={seed}"
            )


class TestSourcePlans:
    def test_integer_reduction(self):
        assert_matches_sequential(REDUCTION)

    def test_critical_histogram(self):
        assert_matches_sequential(CRITICAL_HISTOGRAM)

    def test_lastprivate_writeback(self):
        assert_matches_sequential(LASTPRIVATE)

    def test_firstprivate_seeding(self):
        assert_matches_sequential(FIRSTPRIVATE)

    def test_private_array(self):
        assert_matches_sequential(PRIVATE_ARRAY)

    def test_threadprivate_buffer_kernel(self):
        from repro.workloads.nas import is_

        module = is_.build_module()
        expected = run_module(module).formatted_output()
        # The IS source plan parallelizes only loop 2; prv is
        # threadprivate, which the source-plan runner does not privatize —
        # but loop 2's updates through the shared copy remain correct
        # sequentially because increments commute and the critical
        # protects loop 4.  We only check the workshared reduction-free
        # loops here via explicit recipes.
        function = module.function("main")
        annotated = [
            a
            for a in function.annotations
            if a.directive.declares_loop_independence()
            and a.loop_header is not None
        ]
        assert annotated


class TestExplicitRecipes:
    def test_wrong_plan_produces_nondeterminism(self):
        # Parallelizing the histogram *without* the critical lock is a
        # data race; with enough seeds the outputs must diverge from the
        # sequential result at least once (lost updates).  Every iteration
        # hits the same bucket so concurrent load/store windows collide.
        source = CRITICAL_HISTOGRAM.replace(
            "pragma omp critical\n    { hist[b] = hist[b] + 1; }",
            "hist[b] = hist[b] + 1;",
        ).replace("key[s] = (s * 37 + 11) % 8;", "key[s] = 0;")
        module = compile_source(source)
        expected = run_module(module).formatted_output()
        function = module.function("main")
        header = next(
            a.loop_header
            for a in function.annotations
            if a.loop_header is not None
        )
        saw_divergence = False
        for seed in range(8):
            fresh = compile_source(source)
            result = run_parallel(
                fresh,
                [LoopParallelization(header=header)],
                workers=4,
                seed=seed,
            )
            if result.formatted_output() != expected:
                saw_divergence = True
        # Note: with instruction-level interleaving, lost updates are
        # overwhelmingly likely across 8 seeds.
        assert saw_divergence

    def test_chunked_schedules_preserve_results(self):
        module = compile_source(REDUCTION)
        expected = run_module(module).formatted_output()
        function = module.function("main")
        annotation = function.annotations[0]
        from repro.runtime import parallelization_from_annotation

        recipe = parallelization_from_annotation(annotation, function)
        for chunk in (1, 3, 8, 64):
            recipe.chunk = chunk
            fresh_module = compile_source(REDUCTION)
            fresh_recipe = parallelization_from_annotation(
                fresh_module.function("main").annotations[0],
                fresh_module.function("main"),
            )
            fresh_recipe.chunk = chunk
            result = run_parallel(
                fresh_module, [fresh_recipe], workers=3, seed=2
            )
            assert result.formatted_output() == expected


class TestPropertyRandomPrograms:
    @given(
        n=st.integers(4, 32),
        mult=st.integers(1, 5),
        seed=st.integers(0, 5),
        workers=st.integers(1, 5),
    )
    @settings(max_examples=20, deadline=None)
    def test_reduction_loops_always_match(self, n, mult, seed, workers):
        source = (
            "func main() {\n"
            "  var s: int = 0;\n"
            "  pragma omp parallel_for reduction(+: s)\n"
            f"  for i in 0..{n} {{ s = s + i * {mult}; }}\n"
            "  print(s);\n"
            "}"
        )
        module = compile_source(source)
        expected = run_module(module).formatted_output()
        fresh = compile_source(source)
        result = run_source_plan(fresh, workers=workers, seed=seed)
        assert result.formatted_output() == expected


# -- validation, schedulers, and real backends (PR 2) --------------------------


class TestValidation:
    """workers/chunk misconfiguration must be a PlanError, not silence."""

    def _module(self):
        return compile_source(REDUCTION)

    def test_workers_below_one_rejected(self):
        from repro.util.errors import PlanError

        for workers in (0, -1, -8):
            with pytest.raises(PlanError, match="workers"):
                run_source_plan(self._module(), workers=workers)

    def test_workers_non_integer_rejected(self):
        from repro.util.errors import PlanError

        with pytest.raises(PlanError, match="workers"):
            run_source_plan(self._module(), workers=2.5)

    def test_zero_or_negative_chunk_rejected(self):
        from repro.util.errors import PlanError

        module = self._module()
        function = module.function("main")
        from repro.runtime import parallelization_from_annotation

        for chunk in (0, -3):
            recipe = parallelization_from_annotation(
                function.annotations[0], function
            )
            recipe.chunk = chunk
            with pytest.raises(PlanError, match="chunk"):
                run_parallel(module, [recipe])

    def test_chunk_override_validated(self):
        from repro.util.errors import PlanError

        with pytest.raises(PlanError, match="chunk"):
            run_source_plan(self._module(), chunk=0)

    def test_unknown_backend_and_schedule_rejected(self):
        from repro.util.errors import PlanError

        with pytest.raises(PlanError, match="backend"):
            run_source_plan(self._module(), backend="gpu")
        with pytest.raises(PlanError, match="schedule"):
            run_source_plan(self._module(), schedule="fractal")


class TestChunkSchedulers:
    def test_every_schedule_partitions_exactly(self):
        from repro.runtime import make_scheduler

        for name in ("static", "dynamic", "guided"):
            for n in (0, 1, 7, 64, 513):
                for workers in (1, 2, 3, 8):
                    for chunk in (None, 1, 4):
                        parts = make_scheduler(name, chunk).partition(
                            range(n), workers
                        )
                        assert len(parts) == workers
                        flat = sorted(v for p in parts for v in p)
                        assert flat == list(range(n)), (
                            name, n, workers, chunk
                        )

    def test_partition_is_deterministic(self):
        from repro.runtime import make_scheduler

        for name in ("static", "dynamic", "guided"):
            a = make_scheduler(name, 2).partition(range(100), 4)
            b = make_scheduler(name, 2).partition(range(100), 4)
            assert a == b

    def test_static_is_round_robin(self):
        from repro.runtime import StaticScheduler

        parts = StaticScheduler(1).partition(range(8), 4)
        assert parts == [[0, 4], [1, 5], [2, 6], [3, 7]]
        parts = StaticScheduler(2).partition(range(8), 2)
        assert parts == [[0, 1, 4, 5], [2, 3, 6, 7]]

    def test_guided_chunks_shrink(self):
        from repro.runtime import GuidedScheduler

        sizes = [
            len(chunk)
            for _worker, chunk in GuidedScheduler()._deal(
                list(range(512)), 4
            )
        ]
        assert sizes[0] == 64  # 512 // (2*4)
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))
        assert sizes[-1] == 1

    def test_dynamic_balances_uneven_tails(self):
        from repro.runtime import DynamicScheduler

        parts = DynamicScheduler(5).partition(range(13), 3)
        loads = sorted(len(p) for p in parts)
        assert loads == [3, 5, 5]

    def test_worker_validation(self):
        from repro.runtime import make_scheduler
        from repro.util.errors import PlanError

        with pytest.raises(PlanError, match="workers"):
            make_scheduler("static").partition(range(4), 0)


class TestRealBackends:
    """threads/processes execute the same recipes as the oracle."""

    SOURCES = (
        REDUCTION,
        CRITICAL_HISTOGRAM,
        LASTPRIVATE,
        FIRSTPRIVATE,
        PRIVATE_ARRAY,
    )

    @pytest.mark.parametrize("backend", ("threads", "processes"))
    def test_source_plans_match_sequential(self, backend):
        for source in self.SOURCES:
            module = compile_source(source)
            expected = run_module(module).formatted_output()
            for workers in (1, 3):
                for schedule in ("static", "dynamic", "guided"):
                    result = run_source_plan(
                        compile_source(source),
                        workers=workers,
                        backend=backend,
                        schedule=schedule,
                    )
                    assert result.formatted_output() == expected, (
                        source, backend, workers, schedule
                    )

    def test_processes_criticals_fall_back_to_threads(self):
        module = compile_source(CRITICAL_HISTOGRAM)
        result = run_source_plan(module, workers=2, backend="processes")
        [region] = result.parallel_regions
        assert region["backend"] == "processes->threads(critical)"

    def test_worker_process_failure_is_reported(self):
        from repro.util.errors import EmulationError

        source = """
        global a: int[4];
        func main() {
          var j: int = 0;
          pragma omp parallel_for
          for i in 0..8 {
            j = i % 5;
            a[j] = 1;
          }
          print(a[0]);
        }
        """
        # Index 4 is out of bounds for int[4]: the child process hits an
        # EmulationError and the parent must surface it, not hang.
        with pytest.raises(EmulationError, match="worker process"):
            run_source_plan(
                compile_source(source), workers=2, backend="processes"
            )

    def test_backend_instances_accepted(self):
        from repro.runtime import ThreadsBackend, get_backend

        backend = get_backend(ThreadsBackend())
        assert backend.name == "threads"
        module = compile_source(REDUCTION)
        expected = run_module(module).formatted_output()
        result = run_source_plan(compile_source(REDUCTION), backend=backend)
        assert result.formatted_output() == expected


SCRATCH_THREADPRIVATE = """
global out: int[8];
global scratch: int[4];
pragma omp threadprivate(scratch)

func main() {
  pragma omp parallel_for
  for i in 0..8 {
    for j in 0..4 { scratch[j] = i + j; }
    var acc: int = 0;
    for j in 0..4 { acc = acc + scratch[j]; }
    out[i] = acc;
  }
  print(out[0], out[7], scratch[0], scratch[3]);
}
"""

MINMAX_FLOAT_REDUCTION = """
func main() {
  var lo: float = 1000.0;
  var hi: float = 0.0 - 1000.0;
  var total: float = 0.0;
  pragma omp parallel_for reduction(min: lo) reduction(max: hi) reduction(+: total)
  for i in 0..32 {
    var x: float = float((i * 37) % 19) - 9.0;
    if (x < lo) { lo = x; }
    if (x > hi) { hi = x; }
    total = total + x;
  }
  print(lo, hi, total);
}
"""


class TestRecipeClassification:
    """PS-PDG variables become the recipe role the runtime needs."""

    def test_live_out_scratch_gets_seeded_lastprivate(self):
        from repro.core import build_pspdg
        from repro.analysis import find_natural_loops
        from repro.runtime import parallelization_from_pspdg

        module = compile_source(SCRATCH_THREADPRIVATE)
        function = module.function("main")
        graph = build_pspdg(function, module)
        loop = next(
            l
            for l in find_natural_loops(function)
            if any(
                a.loop_header == l.header.name
                for a in function.annotations
            )
        )
        recipe = parallelization_from_pspdg(graph, loop, module)
        names = lambda items: {
            getattr(s, "var_name", None) or getattr(s, "name", None)
            for s in items
        }
        assert "scratch" in names(recipe.firstprivate)
        assert "scratch" in names(recipe.lastprivate)

    @pytest.mark.parametrize("backend", ("simulated", "threads", "processes"))
    def test_scratch_recipe_execution_conforms(self, backend):
        from repro.core import build_pspdg
        from repro.analysis import find_natural_loops
        from repro.runtime import parallelization_from_pspdg

        expected = run_module(
            compile_source(SCRATCH_THREADPRIVATE)
        ).formatted_output()
        module = compile_source(SCRATCH_THREADPRIVATE)
        function = module.function("main")
        graph = build_pspdg(function, module)
        loop = next(
            l
            for l in find_natural_loops(function)
            if any(
                a.loop_header == l.header.name
                for a in function.annotations
            )
        )
        recipe = parallelization_from_pspdg(graph, loop, module)
        result = run_parallel(module, [recipe], workers=3, backend=backend)
        assert result.formatted_output() == expected, backend


class TestReductionMergeOps:
    @pytest.mark.parametrize("backend", ("simulated", "threads", "processes"))
    def test_min_max_float_reductions(self, backend):
        expected = run_module(
            compile_source(MINMAX_FLOAT_REDUCTION)
        ).formatted_output()
        result = run_source_plan(
            compile_source(MINMAX_FLOAT_REDUCTION),
            workers=4,
            backend=backend,
        )
        assert result.formatted_output() == expected, backend

    def test_merge_table_is_total(self):
        from repro.runtime import ParallelInterpreter
        from repro.util.errors import PlanError

        merge = ParallelInterpreter._merge
        assert merge("add", 2, 3) == 5
        assert merge("mul", 2, 3) == 6
        assert merge("min", 2, 3) == 2
        assert merge("max", 2, 3) == 3
        assert merge("and", 6, 3) == 2
        assert merge("or", 6, 3) == 7
        assert merge("xor", 6, 3) == 5
        with pytest.raises(PlanError, match="unknown reduction"):
            merge("div", 1, 2)

    def test_unknown_identity_rejected(self):
        from repro.util.errors import PlanError

        module = compile_source(REDUCTION)
        function = module.function("main")
        from repro.runtime import parallelization_from_annotation

        recipe = parallelization_from_annotation(
            function.annotations[0], function
        )
        recipe.reductions = [(recipe.reductions[0][0], "nand")]
        with pytest.raises(PlanError, match="identity"):
            run_parallel(module, [recipe])


CALLEE_ARG_LOOP = """
func fill(p: int[16], base: int) {
  pragma omp parallel_for
  for i in 0..16 {
    p[i] = base + i;
  }
}

func main() {
  var local: int[16];
  fill(local, 10);
  print(local[0], local[15]);
}
"""


class TestArgumentPointerWriteback:
    """A DOALL loop in a callee writing through a pointer argument.

    The caller-local array is reachable only via ``frame.args`` inside
    the parallelized function, so the processes backend must diff and
    write back argument-aliased storage, not just globals and allocas.
    """

    @pytest.mark.parametrize("backend", ("simulated", "threads", "processes"))
    def test_callee_arg_stores_flow_back(self, backend):
        expected = run_module(
            compile_source(CALLEE_ARG_LOOP)
        ).formatted_output()
        result = run_source_plan(
            compile_source(CALLEE_ARG_LOOP), workers=3, backend=backend
        )
        assert result.formatted_output() == expected, backend
