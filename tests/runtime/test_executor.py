"""Simulated parallel runtime: plans must preserve sequential semantics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.emulator import run_module
from repro.frontend import compile_source
from repro.runtime import (
    LoopParallelization,
    run_parallel,
    run_source_plan,
)

REDUCTION = """
func main() {
  var s: int = 0;
  pragma omp parallel_for reduction(+: s)
  for i in 0..40 {
    s = s + i * i;
  }
  print(s);
}
"""

CRITICAL_HISTOGRAM = """
global key: int[64];
global hist: int[8];

func main() {
  for s in 0..64 {
    key[s] = (s * 37 + 11) % 8;
  }
  pragma omp for
  for j in 0..64 {
    var b: int = key[j];
    pragma omp critical
    { hist[b] = hist[b] + 1; }
  }
  print(hist[0], hist[1], hist[2], hist[3]);
}
"""

LASTPRIVATE = """
global a: int[16];

func main() {
  var v: int = 0;
  for i in 0..16 { a[i] = i * 3; }
  pragma omp parallel_for lastprivate(v)
  for j in 0..16 {
    v = a[j];
  }
  print(v);
}
"""

FIRSTPRIVATE = """
global a: int[16];

func main() {
  var seed: int = 5;
  pragma omp parallel_for firstprivate(seed)
  for i in 0..16 {
    a[i] = seed + i;
  }
  print(a[0], a[15]);
}
"""

PRIVATE_ARRAY = """
global v: int[64];

func main() {
  var t: int[8];
  pragma omp parallel_for private(t)
  for p in 0..8 {
    for j in 0..8 { t[j] = p * 8 + j; }
    for j in 0..8 { v[p * 8 + j] = t[j] * 2; }
  }
  print(v[0], v[31], v[63]);
}
"""


def assert_matches_sequential(source, seeds=(0, 1, 7), workers=(2, 4)):
    module = compile_source(source)
    expected = run_module(module).formatted_output()
    for worker_count in workers:
        for seed in seeds:
            result = run_source_plan(
                module, workers=worker_count, seed=seed
            )
            assert result.formatted_output() == expected, (
                f"workers={worker_count} seed={seed}"
            )


class TestSourcePlans:
    def test_integer_reduction(self):
        assert_matches_sequential(REDUCTION)

    def test_critical_histogram(self):
        assert_matches_sequential(CRITICAL_HISTOGRAM)

    def test_lastprivate_writeback(self):
        assert_matches_sequential(LASTPRIVATE)

    def test_firstprivate_seeding(self):
        assert_matches_sequential(FIRSTPRIVATE)

    def test_private_array(self):
        assert_matches_sequential(PRIVATE_ARRAY)

    def test_threadprivate_buffer_kernel(self):
        from repro.workloads.nas import is_

        module = is_.build_module()
        expected = run_module(module).formatted_output()
        # The IS source plan parallelizes only loop 2; prv is
        # threadprivate, which the source-plan runner does not privatize —
        # but loop 2's updates through the shared copy remain correct
        # sequentially because increments commute and the critical
        # protects loop 4.  We only check the workshared reduction-free
        # loops here via explicit recipes.
        function = module.function("main")
        annotated = [
            a
            for a in function.annotations
            if a.directive.declares_loop_independence()
            and a.loop_header is not None
        ]
        assert annotated


class TestExplicitRecipes:
    def test_wrong_plan_produces_nondeterminism(self):
        # Parallelizing the histogram *without* the critical lock is a
        # data race; with enough seeds the outputs must diverge from the
        # sequential result at least once (lost updates).  Every iteration
        # hits the same bucket so concurrent load/store windows collide.
        source = CRITICAL_HISTOGRAM.replace(
            "pragma omp critical\n    { hist[b] = hist[b] + 1; }",
            "hist[b] = hist[b] + 1;",
        ).replace("key[s] = (s * 37 + 11) % 8;", "key[s] = 0;")
        module = compile_source(source)
        expected = run_module(module).formatted_output()
        function = module.function("main")
        header = next(
            a.loop_header
            for a in function.annotations
            if a.loop_header is not None
        )
        saw_divergence = False
        for seed in range(8):
            fresh = compile_source(source)
            result = run_parallel(
                fresh,
                [LoopParallelization(header=header)],
                workers=4,
                seed=seed,
            )
            if result.formatted_output() != expected:
                saw_divergence = True
        # Note: with instruction-level interleaving, lost updates are
        # overwhelmingly likely across 8 seeds.
        assert saw_divergence

    def test_chunked_schedules_preserve_results(self):
        module = compile_source(REDUCTION)
        expected = run_module(module).formatted_output()
        function = module.function("main")
        annotation = function.annotations[0]
        from repro.runtime import parallelization_from_annotation

        recipe = parallelization_from_annotation(annotation, function)
        for chunk in (1, 3, 8, 64):
            recipe.chunk = chunk
            fresh_module = compile_source(REDUCTION)
            fresh_recipe = parallelization_from_annotation(
                fresh_module.function("main").annotations[0],
                fresh_module.function("main"),
            )
            fresh_recipe.chunk = chunk
            result = run_parallel(
                fresh_module, [fresh_recipe], workers=3, seed=2
            )
            assert result.formatted_output() == expected


class TestPropertyRandomPrograms:
    @given(
        n=st.integers(4, 32),
        mult=st.integers(1, 5),
        seed=st.integers(0, 5),
        workers=st.integers(1, 5),
    )
    @settings(max_examples=20, deadline=None)
    def test_reduction_loops_always_match(self, n, mult, seed, workers):
        source = (
            "func main() {\n"
            "  var s: int = 0;\n"
            "  pragma omp parallel_for reduction(+: s)\n"
            f"  for i in 0..{n} {{ s = s + i * {mult}; }}\n"
            "  print(s);\n"
            "}"
        )
        module = compile_source(source)
        expected = run_module(module).formatted_output()
        fresh = compile_source(source)
        result = run_source_plan(fresh, workers=workers, seed=seed)
        assert result.formatted_output() == expected
