"""Fault-tolerant region execution: injection, retry, and the ladder.

Covers the ``REPRO_FAULTS`` spec grammar, the supervised retry path of
the processes backend (crash / hang / corrupt_wire / drop_result all
recover to byte-identical output), the graceful-degradation ladder with
its Session-scoped quarantine, and a chaos conformance sweep over every
NAS kernel: a faulted run either matches the sequential reference or
surfaces a clean :class:`EmulationError` — never a hang, never silent
corruption, never an unclassified infrastructure exception.
"""

import pytest

from repro.runtime import backends, faults, knobs
from repro.util.errors import EmulationError, PlanError
from repro.workloads import kernel_names
from repro.workloads.nas import build_session
from support.conformance import (
    CHAOS_SCENARIOS,
    chaos_outcome,
    describe_mismatch,
    outputs_close,
)


@pytest.fixture(autouse=True)
def fresh_pool():
    backends._reset_chunk_pool()
    yield
    backends._reset_chunk_pool()


@pytest.fixture
def fast_retries():
    """Shrink retry budgets/backoff so chaos tests don't sleep much."""
    knobs.REPRO_RETRY_BUDGET.value = 2
    knobs.REPRO_RETRY_BACKOFF.value = 0.01
    yield
    knobs.refresh()


def inject(spec):
    """Activate a fault spec for the rest of the test."""
    knobs.REPRO_FAULTS.value = spec


# -- spec grammar --------------------------------------------------------------


class TestFaultSpec:
    def test_parses_multi_scenario_spec(self):
        plan = faults.FaultPlan.from_spec(
            "crash:region=2:worker=1;hang:p=0.05:seed=7:s=3,"
            "corrupt_wire:times=4;drop_result"
        )
        kinds = [s.kind for s in plan.scenarios]
        assert kinds == ["crash", "hang", "corrupt_wire", "drop_result"]
        crash, hang, corrupt, drop = plan.scenarios
        assert (crash.region, crash.worker) == (2, 1)
        assert (hang.p, hang.seed, hang.seconds) == (0.05, 7, 3.0)
        assert hang.directive() == ("hang", 3.0)
        assert corrupt.times == 4
        assert drop.times == 1 and drop.directive() == ("drop_result",)

    @pytest.mark.parametrize("spec", [
        "fry:region=0",            # unknown kind
        "crash:cpu=3",             # unknown selector
        "crash:region",            # malformed field (no '=')
        "crash:region=two",        # bad value
        "hang:p=maybe",            # bad value
    ])
    def test_rejects_bad_specs(self, spec):
        with pytest.raises(PlanError):
            faults.FaultPlan.from_spec(spec)

    def test_budget_consumed_per_draw(self):
        plan = faults.FaultPlan.from_spec("crash:worker=0:times=2")
        assert plan.draw(0, 0) is not None
        assert plan.draw(1, 0) is not None
        assert plan.draw(2, 0) is None  # budget of 2 exhausted
        assert plan.draw(3, 1) is None  # wrong worker never matched

    def test_times_zero_is_unlimited(self):
        plan = faults.FaultPlan.from_spec("drop_result:times=0")
        assert all(plan.draw(region, 0) for region in range(10))

    def test_probability_draws_are_deterministic(self):
        spec = "crash:p=0.4:seed=11:times=0"
        first = faults.FaultPlan.from_spec(spec)
        second = faults.FaultPlan.from_spec(spec)
        cells = [(region, worker)
                 for region in range(8) for worker in range(4)]
        draws = [bool(first.draw(*cell)) for cell in cells]
        assert draws == [bool(second.draw(*cell)) for cell in cells]
        assert any(draws) and not all(draws)  # p=0.4 actually selects

    def test_active_plan_follows_spec_changes(self):
        assert faults.active_plan() is None
        inject("crash:region=0")
        plan = faults.active_plan()
        assert plan is not None and faults.active_plan() is plan
        inject("")
        assert faults.active_plan() is None


class TestQuarantine:
    def test_demotion_is_monotonic(self):
        quarantine = faults.Quarantine()
        key = ("hash", "loop@3")
        assert quarantine.rung_for(key) is None
        quarantine.demote(key, "threads")
        assert quarantine.rung_for(key) == "threads"
        quarantine.demote(key, "serial")
        quarantine.demote(key, "threads")  # never climbs back up
        assert quarantine.rung_for(key) == "serial"
        assert len(quarantine) == 1 and quarantine.entries() == {
            key: "serial"
        }
        quarantine.clear()
        assert quarantine.rung_for(key) is None


# -- supervised recovery on the processes backend ------------------------------


class TestSupervisedRecovery:
    def run_lu(self, session, **kwargs):
        return session.run("PS-PDG", opt="-O2", workers=2,
                           backend="processes", **kwargs)

    def test_crash_recovers_byte_identical(self, fast_retries):
        """The ISSUE's acceptance demo: seeded crash on LU -O2."""
        session = build_session("LU")
        clean = self.run_lu(session)
        assert outputs_close(clean.output, session.execution.output)

        inject("crash:region=0:worker=0")
        faulted = self.run_lu(session)
        assert faulted.output == clean.output  # bitwise, not isclose
        region = faulted.parallel_regions[0]
        assert region["retries"] >= 1
        assert region["faults_injected"] >= 1
        assert region["recovery_ms"] > 0
        assert region["failovers"] == 0  # retry healed it, no demotion
        report = session.diagnostics.parallel_report()
        assert "rtry" in report and "rec-ms" in report

    @pytest.mark.parametrize("spec", [
        "corrupt_wire:region=0:worker=1",
        "drop_result:region=0:worker=0",
    ])
    def test_wire_faults_recover(self, fast_retries, spec):
        session = build_session("EP")
        clean = session.run("PS-PDG", opt="-O2", workers=2,
                            backend="processes")
        inject(spec)
        faulted = session.run("PS-PDG", opt="-O2", workers=2,
                              backend="processes")
        assert faulted.output == clean.output
        assert sum(r["retries"] for r in faulted.parallel_regions) >= 1
        assert sum(r["faults_injected"]
                   for r in faulted.parallel_regions) >= 1

    def test_hang_trips_region_deadline_and_recovers(self, fast_retries):
        session = build_session("EP")
        clean = session.run("PS-PDG", opt="-O2", workers=2,
                            backend="processes")
        knobs.REPRO_REGION_TIMEOUT.value = 1.5
        inject("hang:region=0:worker=0:s=30")
        faulted = session.run("PS-PDG", opt="-O2", workers=2,
                              backend="processes")
        assert faulted.output == clean.output
        assert sum(r["retries"] for r in faulted.parallel_regions) >= 1

    def test_supervise_off_disables_injection(self, fast_retries):
        """Legacy dispatch never consults the fault plan (knob doc)."""
        session = build_session("EP")
        knobs.REPRO_SUPERVISE.value = False
        inject("crash:region=0:worker=0")
        result = session.run("PS-PDG", opt="-O2", workers=2,
                             backend="processes")
        assert outputs_close(result.output, session.execution.output)
        assert sum(r["faults_injected"]
                   for r in result.parallel_regions) == 0
        assert sum(r["retries"] for r in result.parallel_regions) == 0


class TestDegradationLadder:
    def test_exhausted_retries_fail_over_then_quarantine(self,
                                                         fast_retries):
        knobs.REPRO_RETRY_BUDGET.value = 1
        session = build_session("EP")
        expected = session.execution.output
        inject("crash:p=1:seed=1:times=0")  # every dispatch dies
        result = session.run("PS-PDG", opt="-O2", workers=2,
                             backend="processes")
        assert outputs_close(result.output, expected)
        region = result.parallel_regions[0]
        assert region["backend"] == "processes->threads(failover)"
        assert region["failovers"] >= 1
        assert len(session._quarantine()) >= 1

        # Warm re-run on the same Session: the quarantine remembers the
        # rung, so no doomed processes retries are re-paid.
        inject("")
        warm = session.run("PS-PDG", opt="-O2", workers=2,
                           backend="processes")
        assert outputs_close(warm.output, expected)
        region = warm.parallel_regions[0]
        assert region["backend"] == "processes->threads(quarantine)"
        assert region["retries"] == 0 and region["failovers"] == 0

    def test_failover_off_surfaces_dispatch_error(self, fast_retries):
        knobs.REPRO_RETRY_BUDGET.value = 1
        knobs.REPRO_FAILOVER.value = False
        session = build_session("EP")
        inject("crash:p=1:seed=1:times=0")
        with pytest.raises(EmulationError, match="attempts"):
            session.run("PS-PDG", opt="-O2", workers=2,
                        backend="processes")

    def test_program_errors_are_never_retried(self, fast_retries,
                                              compile_):
        """A genuinely wrong program fails cleanly with zero retries."""
        module = compile_("""
global a: int[8];
func main() {
  pragma omp parallel_for
  for i in 0..8 {
    a[i] = a[i] / (i - 4);
  }
  print(a[0]);
}
""")
        from repro.runtime import run_source_plan

        with pytest.raises(EmulationError, match="[Dd]ivision"):
            run_source_plan(module, "main", workers=2, seed=0,
                            backend="processes")


# -- chaos conformance sweep ---------------------------------------------------


@pytest.fixture(scope="module")
def chaos_state():
    """Per kernel: (session, sequential reference output) — built once."""
    state = {}
    for name in kernel_names():
        session = build_session(name)
        state[name] = (session, session.execution.output)
    return state


@pytest.mark.parametrize("spec", CHAOS_SCENARIOS)
@pytest.mark.parametrize("kernel", kernel_names())
def test_chaos_sweep(kernel, spec, chaos_state, fast_retries):
    """Every kernel x scenario: recover or fail cleanly, never corrupt."""
    session, expected = chaos_state[kernel]
    inject(spec)
    status, payload = chaos_outcome(
        lambda: session.run("PS-PDG", opt="-O2", workers=2,
                            backend="processes")
    )
    if status == "ok":
        assert outputs_close(payload.output, expected), (
            f"{kernel} under {spec!r}: "
            + describe_mismatch(payload.output, expected)
        )
    else:
        assert isinstance(payload, EmulationError)
