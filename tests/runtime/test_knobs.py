"""The consolidated env-knob registry (repro.runtime.knobs).

Every debug/bench flag the runtime reads from the environment lives in
one registry with one truthiness rule, refreshed between tests by the
autouse conftest fixture — these tests pin the rule, the refresh
contract, and the payload-codec re-exports older tests monkeypatch.
"""

import pickle

import pytest

from repro.runtime import knobs, payload


def test_unset_env_uses_default(monkeypatch):
    monkeypatch.delenv("VERIFY_DIFFS", raising=False)
    monkeypatch.delenv("RESIDENT_PRELUDE", raising=False)
    knobs.refresh()
    assert not knobs.VERIFY_DIFFS
    assert knobs.RESIDENT_PRELUDE  # default-on knob


@pytest.mark.parametrize("raw", ["", "0", "false", "False", " no ", "OFF"])
def test_falsy_spellings(monkeypatch, raw):
    monkeypatch.setenv("VERIFY_DIFFS", raw)
    monkeypatch.setenv("RESIDENT_PRELUDE", raw)
    knobs.refresh()
    assert not knobs.VERIFY_DIFFS
    assert not knobs.RESIDENT_PRELUDE


@pytest.mark.parametrize("raw", ["1", "true", "yes", "on", "anything"])
def test_truthy_spellings(monkeypatch, raw):
    monkeypatch.setenv("VERIFY_COMPILED", raw)
    knobs.refresh()
    assert knobs.VERIFY_COMPILED


def test_refresh_resets_manual_overrides(monkeypatch):
    """A test that pokes ``knob.value`` cannot leak into the next test."""
    monkeypatch.delenv("REPRO_COMPILE", raising=False)
    knobs.refresh()
    assert not knobs.REPRO_COMPILE
    knobs.REPRO_COMPILE.value = True
    assert knobs.REPRO_COMPILE
    knobs.refresh()  # what the autouse conftest fixture runs
    assert not knobs.REPRO_COMPILE


def test_flag_registry_is_get_or_create():
    first = knobs.flag("VERIFY_DIFFS")
    assert first is knobs.VERIFY_DIFFS
    fresh = knobs.flag("REPRO_TEST_ONLY_KNOB")
    try:
        assert knobs.flag("REPRO_TEST_ONLY_KNOB") is fresh
        assert "REPRO_TEST_ONLY_KNOB" in knobs.as_dict()
    finally:
        knobs._KNOBS.pop("REPRO_TEST_ONLY_KNOB")


def test_flag_conflicting_default_is_an_error():
    """Re-registration must not silently drop a conflicting default.

    Before the fix, ``flag(name, default=True)`` on an existing
    default-False knob returned the old knob unchanged — the caller's
    explicit default was ignored without a trace.
    """
    knobs.flag("REPRO_TEST_CONFLICT_KNOB", default=False)
    try:
        with pytest.raises(ValueError, match="conflicting"):
            knobs.flag("REPRO_TEST_CONFLICT_KNOB", default=True)
        # Same-default re-registration stays a cheap fetch.
        again = knobs.flag("REPRO_TEST_CONFLICT_KNOB", default=False)
        assert again is knobs._KNOBS["REPRO_TEST_CONFLICT_KNOB"]
    finally:
        knobs._KNOBS.pop("REPRO_TEST_CONFLICT_KNOB")


def test_snapshot_carries_defaults_values_and_docs():
    snap = knobs.snapshot()
    assert set(snap) == set(knobs.as_dict())
    entry = snap["RESIDENT_PRELUDE"]
    assert entry["default"] is True
    assert isinstance(entry["value"], bool)
    assert "resident" in entry["doc"].lower()
    # Every registered knob documents itself — the README table is
    # generated from these lines.
    assert all(info["doc"] for info in snap.values())


def test_readme_knob_table_matches_the_registry():
    """The README's knob table is the registry's, verbatim.

    Adding/renaming a knob without pasting the regenerated table
    (``python -m repro knobs --markdown``) fails here — README switches
    can never drift from what the code actually reads.
    """
    from pathlib import Path

    readme = Path(__file__).resolve().parents[2] / "README.md"
    table = knobs.markdown_table()
    assert "| `RESIDENT_PRELUDE` | on |" in table  # sanity
    assert table in readme.read_text(), (
        "README.md knob table is stale — regenerate it with "
        "`python -m repro knobs --markdown` and paste it in"
    )


def test_payload_reexports_are_knob_objects():
    """payload.VERIFY_* stay monkeypatch-compatible module attributes."""
    assert payload.VERIFY_DIFFS is knobs.VERIFY_DIFFS
    assert payload.MEASURE_NAIVE is knobs.MEASURE_NAIVE
    assert payload.VERIFY_PRELUDE is knobs.VERIFY_PRELUDE
    assert payload.RESIDENT_PRELUDE is knobs.RESIDENT_PRELUDE
    assert payload.VERIFY_COMPILED is knobs.VERIFY_COMPILED


def test_env_wins_over_stale_value(monkeypatch):
    monkeypatch.setenv("MEASURE_NAIVE", "1")
    knobs.refresh()
    assert knobs.MEASURE_NAIVE
    monkeypatch.setenv("MEASURE_NAIVE", "0")
    knobs.refresh()
    assert not knobs.MEASURE_NAIVE


def test_knob_repr_and_pickle_guard():
    text = repr(knobs.VERIFY_DIFFS)
    assert "VERIFY_DIFFS" in text
    # Knobs are process-local switches; pickling one (e.g. into a wire
    # header) is a bug. bool() them first — as encode_region does.
    assert isinstance(bool(knobs.VERIFY_DIFFS), bool)
    assert pickle.loads(pickle.dumps(bool(knobs.VERIFY_DIFFS))) in (
        True, False,
    )
