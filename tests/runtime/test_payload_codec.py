"""Region payload codec invariants (processes backend wire format v2).

The codec must be a pure re-encoding of what the seed shipped: the same
region (from the same codec state) encodes to byte-identical streams, a
decoded worker frame preserves the register→storage aliasing the child's
diff and write-back rely on, the write-log diff is byte-for-byte the
legacy snapshot diff on every NAS kernel, and the module's bytes travel
at most once per pool recycle epoch (with the miss/retry path covering
pool workers that joined late).  The resident-prelude protocol itself is
covered by ``test_prelude_cache.py``.
"""

import pytest

from repro import Session
from repro.runtime import backends
from repro.runtime import payload as payload_codec
from support.conformance import outputs_close

pytestmark = pytest.mark.usefixtures("fresh_codec")

KERNELS = ("BT", "CG", "EP", "FT", "IS", "LU", "MG", "SP")


@pytest.fixture
def fresh_codec():
    backends._reset_chunk_pool()
    payload_codec.reset_codec_caches()
    yield
    backends._reset_chunk_pool()
    payload_codec.reset_codec_caches()


@pytest.fixture
def captured_region(monkeypatch):
    """The encode_region outputs of a real CG processes run.

    Each capture holds the region's payloads plus an immediate second
    encoding of the *same live state* from a cloned codec (the codec is
    stateful — its hash chain and write log advance per region — and the
    run mutates storage right after, so re-encoding later would see
    different values).
    """
    captured = []
    real = payload_codec.encode_region

    def spy(**kwargs):
        twin_kwargs = dict(kwargs)
        if twin_kwargs.get("prelude") is not None:
            twin_kwargs["prelude"] = twin_kwargs["prelude"].clone()
        encoded = real(**kwargs)
        captured.append((encoded, real(**twin_kwargs)))
        return encoded

    monkeypatch.setattr(backends.payload_codec, "encode_region", spy)
    session = Session.from_kernel("CG")
    result = session.run("PS-PDG", workers=4, backend="processes")
    assert result.parallel_regions and captured
    return session, captured


class TestEncodeDeterminism:
    def test_same_region_encodes_byte_identical_streams(
        self, captured_region
    ):
        _session, captured = captured_region
        # Encoding the same live region twice (from equal codec state)
        # must reproduce the wire bytes exactly: the persistent-id
        # traversal, the dirty drain, and the memo priming are all
        # deterministic within a session.
        for first, again in captured:
            assert [p.header_bytes for p in again.workers] == [
                p.header_bytes for p in first.workers
            ]
            assert [p.delta_bytes for p in again.workers] == [
                p.delta_bytes for p in first.workers
            ]
            assert [p.state_bytes for p in again.workers] == [
                p.state_bytes for p in first.workers
            ]
            assert len(set(p.header_bytes for p in first.workers)) == 1
            assert [p.next_key for p in again.workers] == [
                p.next_key for p in first.workers
            ]

    def test_warm_regions_ship_no_state(self, captured_region):
        _session, captured = captured_region
        cold, warm = captured[0][0], [enc for enc, _ in captured[1:]]
        assert all(p.state_bytes is not None for p in cold.workers)
        assert warm and any(
            p.state_bytes is None for enc in warm for p in enc.workers
        )

    def test_deltas_are_small_relative_to_state(self, captured_region):
        _session, captured = captured_region
        encoded, _again = captured[0]
        for worker_payload in encoded.workers:
            assert (
                len(worker_payload.delta_bytes)
                < len(worker_payload.state_bytes)
            )


class TestDecodedAliasing:
    def test_register_points_into_decoded_shared_storage(
        self, captured_region
    ):
        _session, captured = captured_region
        encoded, _again = captured[0]
        worker_payload = encoded.workers[0]
        decoded, miss = payload_codec.decode_payload(worker_payload.wire())
        assert miss is None
        frame = decoded["frame"]
        shared_ids = {
            id(values) for values in decoded["global_storage"].values()
        }
        shared_ids.update(id(storage) for storage in frame.objects.values())
        pointer_registers = [
            value
            for value in frame.registers.values()
            if isinstance(value, tuple) and len(value) == 2
        ]
        assert pointer_registers
        # Every materialized pointer register aims at a decoded object
        # table entry — not at a duplicate an independent-unpickler
        # split would have produced.
        assert all(
            id(storage) in shared_ids for storage, _offset in pointer_registers
        )

    def test_store_through_register_is_visible_in_diff(
        self, captured_region
    ):
        _session, captured = captured_region
        encoded, _again = captured[0]
        decoded, miss = payload_codec.decode_payload(
            encoded.workers[0].wire()
        )
        assert miss is None
        frame = decoded["frame"]
        index = payload_codec.shared_index(
            frame, decoded["global_storage"], decoded["private_alloca_uids"]
        )
        shared_ids = {
            id(storage)
            for group in index
            for _key, storage in group
        }
        # Prefer a store through a pre-materialized pointer register;
        # registers are pruned to the region's live-ins, so fall back to
        # a decoded shared object when none of them aliases the index.
        storage, offset = next(
            (
                value
                for value in frame.registers.values()
                if isinstance(value, tuple)
                and len(value) == 2
                and id(value[0]) in shared_ids
            ),
            ((index[0] or index[1])[0][1], 0),
        )
        before = storage[offset]
        log = {(id(storage), offset): (storage, before)}
        storage[offset] = before + 7
        diffs = payload_codec.diff_write_log(log, index)
        assert any(
            entry[1] == offset and entry[2] == before + 7
            for group in diffs
            for entry in group
        )


class TestWriteLogMatchesSnapshot:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_diffs_identical_on_kernel(self, kernel, monkeypatch):
        # The pool worker computes both diffs and errors out on any
        # divergence, so a passing run is the assertion.
        monkeypatch.setattr(payload_codec, "VERIFY_DIFFS", True)
        session = Session.from_kernel(kernel)
        result = session.run("PS-PDG", workers=4, backend="processes")
        assert outputs_close(result.output, session.execution.output)
        processes_regions = [
            region
            for region in result.parallel_regions
            if region["backend"] == "processes"
        ]
        assert processes_regions
        assert all(
            region["dirty_slots"] > 0 for region in processes_regions
        )


class TestModuleByteCache:
    def test_module_ships_once_per_epoch(self):
        session = Session.from_kernel("EP")
        first = session.run("PS-PDG", workers=4, backend="processes")
        second = session.run("PS-PDG", workers=4, backend="processes")
        bytes_first = sum(
            r["payload_bytes"] for r in first.parallel_regions
        )
        bytes_second = sum(
            r["payload_bytes"] for r in second.parallel_regions
        )
        module_bytes = len(
            payload_codec.module_codec(session.module).module_bytes
        )
        # Run 1 broadcast the module; run 2 shipped no module bytes.
        assert bytes_first >= bytes_second + module_bytes
        # A pool recycle wipes the workers' caches: the next run must
        # broadcast again.
        backends._reset_chunk_pool()
        third = session.run("PS-PDG", workers=4, backend="processes")
        bytes_third = sum(
            r["payload_bytes"] for r in third.parallel_regions
        )
        assert bytes_third >= bytes_second + module_bytes

    def test_module_miss_retry(self):
        session = Session.from_kernel("EP")
        codec = payload_codec.module_codec(session.module)
        # Poison the parent's shipped-set for the epoch the next run
        # will create: the parent omits the module bytes, every fresh
        # pool worker misses, and the retry path must recover.
        payload_codec._SHIPPED_MODULES.add(
            (backends._POOL_EPOCH + 1, codec.key)
        )
        result = session.run("PS-PDG", workers=4, backend="processes")
        assert result.output == session.execution.output
        region = result.parallel_regions[0]
        workers_used = sum(
            1 for worker in region["per_worker"] if worker["iterations"]
        )
        assert region["payloads"] > workers_used  # retries happened

    def test_decode_reports_module_miss(self):
        wire = ("no-such-key", None, 999, (), "k", None, False, b"", b"")
        assert payload_codec.decode_payload(wire) == (None, "module")

    def test_codec_cache_reuses_by_identity(self):
        session = Session.from_kernel("EP")
        first = payload_codec.module_codec(session.module)
        assert payload_codec.module_codec(session.module) is first
