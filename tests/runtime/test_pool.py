"""Chunk-pool sizing and recycling (processes backend).

The persistent pool is sized from the planner's machine-model core
count (clamped to real CPUs and a hard cap) and recycled after a
bounded number of region dispatches so child interpreters cannot
accumulate deserialized state forever.
"""

import pytest

from repro import Session
from repro.planner.machine import MachineModel
from repro.runtime import backends


@pytest.fixture(autouse=True)
def fresh_pool():
    backends._reset_chunk_pool()
    yield
    backends._reset_chunk_pool()


class TestDesiredSize:
    def test_default_caps_at_eight(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 32)
        assert backends._desired_pool_size(None) == 8

    def test_machine_cores_clamped_to_cpus(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 4)
        assert backends._desired_pool_size(56) == 4

    def test_hard_cap(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 64)
        assert backends._desired_pool_size(56) == backends._POOL_MAX_WORKERS

    def test_default_respects_hard_cap(self, monkeypatch):
        # The ``requested is None`` branch must honor the hard ceiling
        # too, not just the historical min(8, cpus) heuristic.
        monkeypatch.setattr("os.cpu_count", lambda: 32)
        monkeypatch.setattr(backends, "_POOL_MAX_WORKERS", 4)
        assert backends._desired_pool_size(None) == 4

    def test_floor_of_two(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 1)
        assert backends._desired_pool_size(1) == 2


class TestPoolLifecycle:
    def test_same_size_reuses_pool(self):
        first = backends._chunk_pool(2)
        second = backends._chunk_pool(2)
        assert first is second

    def test_pool_grows_but_never_shrinks(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 8)
        small = backends._chunk_pool(2)
        grown = backends._chunk_pool(4)
        assert grown is not small
        assert backends._POOL_SIZE == 4
        # A smaller request reuses the wider pool: alternating callers
        # (session machine model vs the None default) must not thrash
        # teardown/re-fork cycles.
        assert backends._chunk_pool(2) is grown
        assert backends._POOL_SIZE == 4

    def test_recycles_after_region_budget(self, monkeypatch):
        monkeypatch.setattr(backends, "POOL_RECYCLE_REGIONS", 2)
        first = backends._chunk_pool(2)
        assert backends._chunk_pool(2) is first  # dispatch 2 of 2
        third = backends._chunk_pool(2)  # budget exhausted: fresh pool
        assert third is not first
        assert backends._POOL_REGIONS == 1

    def test_reset_invalidates_prelude_and_bumps_epoch(self):
        """Regression: both reset paths must poison the resident caches.

        The supervisor's recovery path (and plain recycling) depends on
        it — a reset that kept the module-broadcast epoch or the
        parent's primed-worker bookkeeping would let the next dispatch
        trust resident state the dead workers held.
        """
        from repro.runtime import payload

        for kill in (False, True):
            backends._chunk_pool(2)
            payload._SHIPPED_MODULES.add((backends._POOL_EPOCH, "key"))
            payload._RESIDENT_STATES["stream"] = object()
            before = backends._POOL_EPOCH
            backends._reset_chunk_pool(kill=kill)
            assert backends._POOL_EPOCH == before + 1, f"kill={kill}"
            assert not payload._SHIPPED_MODULES, f"kill={kill}"
            assert not payload._RESIDENT_STATES, f"kill={kill}"

    def test_run_after_reset_reships_full_state(self):
        """Post-reset, no payload may be served from resident state.

        The epoch bump makes the parent invalidate its prelude chain and
        proactively attach the full state (no miss round-trips either —
        ``prelude_misses`` stays 0); the next run re-warms the chain.
        """
        session = Session.from_kernel("EP")
        warm = session.run("PS-PDG", workers=2, backend="processes")
        backends._reset_chunk_pool()
        cold = session.run("PS-PDG", workers=2, backend="processes")
        assert cold.output == warm.output
        first = cold.parallel_regions[0]
        assert first["prelude_hits"] == 0
        assert first["prelude_misses"] == 0
        rewarmed = session.run("PS-PDG", workers=2, backend="processes")
        assert sum(r["prelude_hits"] for r in rewarmed.parallel_regions) >= 1

    def test_session_sizes_pool_from_machine_model(self, monkeypatch):
        monkeypatch.setattr("os.cpu_count", lambda: 8)
        machine = MachineModel(cores=3)
        session = Session.from_kernel("EP", machine=machine)
        result = session.run("PS-PDG", workers=2, backend="processes")
        assert result.parallel_regions
        assert backends._POOL_SIZE == 3
