"""Resident-prelude protocol: hits, misses, invalidation, verification.

The processes backend's wire format v2 keeps the decoded shared state
resident in each pool worker, keyed by a content-hash chain, and ships
dirty-slot deltas between dispatches.  Every path that can desynchronize
a worker must degrade to full-state shipping — never to wrong results:
a worker joining mid-epoch (prelude miss + retry), a pool recycle
(epoch invalidation), a parent whose chain outran the delta window
(windowed catch-up), and a parent-side mutation that bypassed the write
log (caught loudly by ``VERIFY_PRELUDE``, fixed by explicit
invalidation).
"""

import math

import pytest

from repro import Session
from repro.runtime import backends
from repro.runtime import payload as payload_codec
from repro.util.errors import EmulationError
from support.conformance import outputs_close

pytestmark = pytest.mark.usefixtures("fresh_codec")


@pytest.fixture
def fresh_codec():
    backends._reset_chunk_pool()
    payload_codec.reset_codec_caches()
    yield
    backends._reset_chunk_pool()
    payload_codec.reset_codec_caches()


@pytest.fixture
def captured_payloads(monkeypatch):
    """Encoded payloads of a warm CG run (multi-region, dirty deltas)."""
    captured = []
    real = payload_codec.encode_region

    def spy(**kwargs):
        encoded = real(**kwargs)
        captured.append(encoded)
        return encoded

    monkeypatch.setattr(backends.payload_codec, "encode_region", spy)
    session = Session.from_kernel("CG")
    result = session.run("PS-PDG", workers=4, backend="processes")
    assert outputs_close(result.output, session.execution.output)
    assert len(captured) >= 3
    return captured


def _decode(worker_payload):
    return payload_codec.decode_payload(worker_payload.wire())


class TestResidentPath:
    def test_warm_regions_hit_and_save_bytes(self):
        session = Session.from_kernel("CG")
        session.run("PS-PDG", workers=4, backend="processes")
        result = session.run("PS-PDG", workers=4, backend="processes")
        regions = result.parallel_regions
        assert sum(r["prelude_hits"] for r in regions) > 0
        assert sum(r["prelude_bytes_saved"] for r in regions) > 0
        # Steady-state payloads must undercut what full-state shipping
        # would have cost (the hits' savings estimate says by how much).
        total = sum(r["payload_bytes"] for r in regions)
        saved = sum(r["prelude_bytes_saved"] for r in regions)
        assert saved > total

    def test_decode_applies_dirty_delta(self, captured_payloads):
        payload_codec._RESIDENT_STATES.clear()
        cold, warm = captured_payloads[0], captured_payloads[1]
        decoded, miss = _decode(cold.workers[0])
        assert miss is None
        resident = payload_codec._RESIDENT_STATES[
            cold.workers[0].stream_id
        ]
        assert resident.key == cold.next_key
        assert warm.workers[0].state_bytes is None
        decoded, miss = _decode(warm.workers[0])
        assert miss is None
        assert resident.key == warm.next_key

    def test_sibling_payload_skips_already_applied_delta(
        self, captured_payloads
    ):
        payload_codec._RESIDENT_STATES.clear()
        cold, warm = captured_payloads[0], captured_payloads[1]
        assert _decode(cold.workers[0])[1] is None
        assert _decode(warm.workers[0])[1] is None
        # The second worker of the same region finds the delta already
        # applied (resident key == next key) and must not re-apply.
        resident = payload_codec._RESIDENT_STATES[
            warm.workers[1].stream_id
        ]
        snapshot = [list(storage) for storage in resident.table]
        assert _decode(warm.workers[1])[1] is None
        assert [list(s) for s in resident.table] == snapshot

    def test_windowed_catchup_skips_a_region(self, captured_payloads):
        """A worker that missed a whole region catches up via the union
        delta instead of re-shipping the full state."""
        payload_codec._RESIDENT_STATES.clear()
        cold, skipped, later = captured_payloads[:3]
        assert _decode(cold.workers[0])[1] is None
        # Skip ``skipped`` entirely: the next region's window must still
        # cover the cold key.
        assert cold.next_key in later.workers[0].keys
        decoded, miss = _decode(later.workers[0])
        assert miss is None
        resident = payload_codec._RESIDENT_STATES[
            later.workers[0].stream_id
        ]
        assert resident.key == later.next_key


class TestMissAndRetry:
    def test_unknown_stream_reports_prelude_miss(self, captured_payloads):
        # Prime this process's module cache (region 1 broadcasts it),
        # then drop the resident state: a delta payload must miss.
        assert _decode(captured_payloads[0].workers[0])[1] is None
        payload_codec._RESIDENT_STATES.clear()
        warm = next(
            enc for enc in captured_payloads
            if enc.workers[0].state_bytes is None
        )
        assert _decode(warm.workers[0]) == (None, "prelude")

    def test_retry_with_state_recovers(self, captured_payloads):
        assert _decode(captured_payloads[0].workers[0])[1] is None
        payload_codec._RESIDENT_STATES.clear()
        warm = next(
            enc for enc in captured_payloads
            if enc.workers[0].state_bytes is None
        )
        refreshed = warm.workers[0].with_state(warm.state_bytes())
        decoded, miss = _decode(refreshed)
        assert miss is None
        assert decoded["segments"]
        resident = payload_codec._RESIDENT_STATES[refreshed.stream_id]
        assert resident.key == warm.next_key

    def test_out_of_window_key_misses(self, captured_payloads):
        payload_codec._RESIDENT_STATES.clear()
        cold = captured_payloads[0]
        assert _decode(cold.workers[0])[1] is None
        resident = payload_codec._RESIDENT_STATES[cold.workers[0].stream_id]
        resident.key = "not-a-chain-key"
        warm = captured_payloads[1]
        assert _decode(warm.workers[0]) == (None, "prelude")

    def test_mid_epoch_join_falls_back_end_to_end(self, monkeypatch):
        """Delta payloads whose chain keys no pool worker holds (the
        situation a freshly-joined worker is in): every one must miss,
        retry with the full state, and still produce the sequential
        results."""
        real = payload_codec.encode_region
        calls = {"n": 0}

        def poisoning(**kwargs):
            calls["n"] += 1
            if calls["n"] == 3:
                # Rewrite the chain so this region's delta references
                # keys no worker can possibly hold resident.
                prelude = kwargs["prelude"]
                if prelude.key is not None:
                    prelude.key = "poisoned-" + prelude.key
                for entry in prelude.history:
                    entry[0] = "poisoned-" + entry[0]
            return real(**kwargs)

        monkeypatch.setattr(
            backends.payload_codec, "encode_region", poisoning
        )
        session = Session.from_kernel("CG")
        result = session.run("PS-PDG", workers=4, backend="processes")
        assert outputs_close(result.output, session.execution.output)
        regions = result.parallel_regions
        assert sum(r["prelude_misses"] for r in regions) > 0


class TestInvalidation:
    def test_pool_recycle_invalidates_resident_state(self):
        session = Session.from_kernel("CG")
        session.run("PS-PDG", workers=4, backend="processes")
        backends._reset_chunk_pool()
        result = session.run("PS-PDG", workers=4, backend="processes")
        assert outputs_close(result.output, session.execution.output)
        # The fresh pool generation has no resident state: the first
        # region must ship the full state cold, not hit.
        first = result.parallel_regions[0]
        assert first["prelude_hits"] == 0

    def test_recycle_resets_pool_caches_but_keeps_module_bytes(
        self, monkeypatch
    ):
        session = Session.from_kernel("EP")
        codec = payload_codec.module_codec(session.module)
        payload_codec._SHIPPED_MODULES.add((0, "sentinel"))
        monkeypatch.setattr(backends, "POOL_RECYCLE_REGIONS", 1)
        backends._chunk_pool(2)
        backends._chunk_pool(2)  # recycle: stale branch must reset caches
        assert not payload_codec._SHIPPED_MODULES
        # The parent-side pickled-module LRU is epoch-independent and
        # expensive to rebuild: recycling must not drop it.
        assert payload_codec.module_codec(session.module) is codec

    def test_explicit_invalidation_reships_full_state(self):
        session = Session.from_kernel("CG")
        session.run("PS-PDG", workers=4, backend="processes")
        session._prelude_codec().invalidate()
        result = session.run("PS-PDG", workers=4, backend="processes")
        assert outputs_close(result.output, session.execution.output)
        assert result.parallel_regions[0]["prelude_hits"] == 0

    def test_worker_error_discards_resident_state(self, captured_payloads):
        payload_codec._RESIDENT_STATES.clear()
        cold = captured_payloads[0]
        stream_id = cold.workers[0].stream_id
        assert _decode(cold.workers[0])[1] is None
        assert stream_id in payload_codec._RESIDENT_STATES
        payload_codec.discard_resident(stream_id)
        assert stream_id not in payload_codec._RESIDENT_STATES


class TestSessionHandoff:
    def test_chain_survives_run_boundaries(self):
        """A session's second run rebinds the codec onto the fresh
        interpreter's storages instead of starting a cold stream."""
        session = Session.from_kernel("EP")
        session.run("PS-PDG", workers=4, backend="processes")
        codec = session._prelude_codec()
        key_after_first = codec.key
        assert key_after_first is not None
        result = session.run("PS-PDG", workers=4, backend="processes")
        assert outputs_close(result.output, session.execution.output)
        assert codec.key != key_after_first
        assert codec is session._prelude_codec()

    def test_rebind_diffs_only_changed_state(self):
        session = Session.from_kernel("CG")
        first = session.run("PS-PDG", workers=4, backend="processes")
        second = session.run("PS-PDG", workers=4, backend="processes")
        bytes_first = sum(r["payload_bytes"] for r in first.parallel_regions)
        bytes_second = sum(
            r["payload_bytes"] for r in second.parallel_regions
        )
        # Run 2 never re-ships the module, and its post-rebind regions
        # ride the resident path.
        assert bytes_second < bytes_first
        assert sum(
            r["prelude_hits"] for r in second.parallel_regions
        ) > 0

    def test_shape_change_falls_back_to_cold(self):
        codec = payload_codec.PreludeCodec(log={})
        codec.key = "k"
        codec.table = [[1, 2], [3, 4]]
        codec.table_ids = {id(s): i for i, s in enumerate(codec.table)}
        codec.adopt_log({})
        # A walk with mismatched storage shapes cannot be rebound.
        assert codec.rebind([[1, 2, 3], [3, 4]]) is False


class TestUnloggedMutationVerification:
    def test_verify_prelude_catches_unlogged_mutation(self, monkeypatch):
        """Shared state mutated behind the write log diverges the
        resident image; ``VERIFY_PRELUDE`` must fail loudly instead of
        silently computing on stale slots."""
        monkeypatch.setattr(payload_codec, "VERIFY_PRELUDE", True)
        real = payload_codec.encode_region
        calls = {"n": 0}

        def corrupting(**kwargs):
            calls["n"] += 1
            if calls["n"] == 2:
                prelude = kwargs["prelude"]
                logged = {key for key in prelude.log}
                # Mutate a slot the write log knows nothing about.
                for storage in kwargs["global_storage"].values():
                    for slot in range(len(storage)):
                        if (id(storage), slot) not in logged:
                            storage[slot] = storage[slot] + 17
                            return real(**kwargs)
            return real(**kwargs)

        monkeypatch.setattr(
            backends.payload_codec, "encode_region", corrupting
        )
        session = Session.from_kernel("CG")
        with pytest.raises(EmulationError, match="diverged"):
            session.run("PS-PDG", workers=4, backend="processes")

    def test_invalidation_makes_unlogged_mutation_safe(self, monkeypatch):
        """The documented contract: mutate outside the interpreter, call
        ``invalidate``, and the next region re-ships the full state."""
        monkeypatch.setattr(payload_codec, "VERIFY_PRELUDE", True)
        real = payload_codec.encode_region
        calls = {"n": 0}

        def corrupting_but_invalidating(**kwargs):
            calls["n"] += 1
            if calls["n"] == 2:
                prelude = kwargs["prelude"]
                logged = {key for key in prelude.log}
                for storage in kwargs["global_storage"].values():
                    for slot in range(len(storage)):
                        if (id(storage), slot) not in logged:
                            storage[slot] = storage[slot] + 17
                            prelude.invalidate()
                            prelude.log.clear()
                            return real(**kwargs)
            return real(**kwargs)

        monkeypatch.setattr(
            backends.payload_codec, "encode_region",
            corrupting_but_invalidating,
        )
        session = Session.from_kernel("CG")
        # Results are *different* from the unmutated program (the
        # mutation is real) but the run must complete without a
        # divergence error: the full-state re-ship carried the mutation.
        session.run("PS-PDG", workers=4, backend="processes")
        assert calls["n"] >= 2


class TestWireHelpers:
    def test_rollback_restores_before_values(self):
        storage = [1.0, 2.0, 3.0]
        log = {}
        from repro.emulator.interp import record_write

        record_write(log, storage, 1)
        storage[1] = 9.0
        record_write(log, storage, 1)  # second write keeps first before
        storage[1] = 11.0
        payload_codec.rollback_writes(log)
        assert storage == [1.0, 2.0, 3.0]

    @pytest.mark.parametrize("values", [
        [],
        [3],
        list(range(100)),
        list(range(0, 64, 4)),
        [0, 1, 2, 3, 50, 51, 52, 53],
        [5, 9, 2, 40, 41, 42, 43, 44, 45, 46, 47],
    ])
    def test_iteration_packing_roundtrips(self, values):
        packed = payload_codec._pack_iterations(values)
        assert payload_codec._unpack_iterations(packed) == list(values)

    def test_dense_dirty_packs_into_runs(self):
        dirty = {(0, slot): float(slot) for slot in range(32)}
        dirty[(2, 7)] = 1.5
        singles, runs = payload_codec._pack_dirty(dirty)
        assert runs == [(0, 0, [float(s) for s in range(32)])]
        assert singles == [2, 7, 1.5]

    def test_live_in_registers_excludes_loop_defs(self):
        from repro.analysis.loops import find_natural_loops
        from repro.frontend import compile_source

        module = compile_source("""
        global a: int[8];

        func main() {
          var base: int = 3;
          for i in 0..8 {
            a[i] = base + i;
          }
          print(a[5]);
        }
        """)
        function = module.function("main")
        loops = find_natural_loops(function)
        needed = payload_codec.live_in_registers(loops)
        inside = {
            inst
            for loop in loops
            for block in loop.blocks
            for inst in block.instructions
        }
        assert needed
        assert not (needed & inside)

    def test_drain_never_elides_zero_sign_or_type_changes(self):
        codec = payload_codec.PreludeCodec(log={})
        storage = [0.0, 1, 2.0]
        codec.add_storage(storage)
        for slot in range(3):
            codec.log[(id(storage), slot)] = (storage, storage[slot])
        storage[0] = -0.0  # == 0.0 but a different value downstream
        storage[1] = 1.0  # == 1 but a different type
        storage[2] = 2.0  # genuinely unchanged: elided
        dirty = codec.drain_dirty()
        assert dirty == {(0, 0): -0.0, (0, 1): 1.0}
        assert math.copysign(1.0, dirty[(0, 0)]) == -1.0

    def test_window_never_evicts_its_newest_entry(self):
        codec = payload_codec.PreludeCodec(log={})
        codec.key = "k0"
        huge = {(0, slot): slot for slot in range(20_000)}
        keys, union, _base = codec.window(huge)
        # Larger than every cap, but the just-shipped region's workers
        # must still be able to stay resident.
        assert keys == ("k0",)
        assert len(union) == len(huge)

    def test_reset_codec_caches_clears_resident_states(self):
        payload_codec._RESIDENT_STATES[123] = object()
        payload_codec.reset_codec_caches()
        assert not payload_codec._RESIDENT_STATES
