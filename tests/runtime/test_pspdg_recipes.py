"""Executing plans derived from the PS-PDG itself (not just the source).

`parallelization_from_pspdg` turns the PS-PDG's variables for a loop into
an execution recipe; running it must preserve sequential semantics — this
is the end-to-end statement that PS-PDG-derived plans are safe.
"""

from repro.analysis import find_natural_loops
from repro.core import build_pspdg
from repro.emulator import run_module
from repro.frontend import compile_source
from repro.runtime import parallelization_from_pspdg, run_parallel

THREADPRIVATE_HISTOGRAM = """
global key: int[64];
global prv: int[8];
pragma omp threadprivate(prv)

func main() {
  var hits: int = 0;
  for s in 0..64 {
    key[s] = (s * 5 + 3) % 8;
  }
  pragma omp for reduction(+: hits)
  for j in 0..64 {
    var b: int = key[j];
    prv[b] = prv[b] + 1;
    hits = hits + 1;
  }
  print(hits);
}
"""


def test_pspdg_recipe_includes_declared_variables():
    module = compile_source(THREADPRIVATE_HISTOGRAM)
    function = module.function("main")
    graph = build_pspdg(function, module)
    loops = find_natural_loops(function)
    annotated = next(
        loop
        for loop in loops
        if any(
            a.loop_header == loop.header.name for a in function.annotations
        )
    )
    recipe = parallelization_from_pspdg(graph, annotated, module)
    privatized_names = {
        getattr(s, "var_name", None) or getattr(s, "name", None)
        for s in recipe.privatized
    }
    assert "prv" in privatized_names  # threadprivate global
    assert "j" in privatized_names  # induction variable
    reduction_names = {
        getattr(s, "var_name", None) for s, _op in recipe.reductions
    }
    assert "hits" in reduction_names


def test_pspdg_recipe_execution_matches_sequential():
    module = compile_source(THREADPRIVATE_HISTOGRAM)
    expected = run_module(module).formatted_output()
    for seed in (0, 1, 5):
        fresh = compile_source(THREADPRIVATE_HISTOGRAM)
        function = fresh.function("main")
        graph = build_pspdg(function, fresh)
        loops = find_natural_loops(function)
        annotated = next(
            loop
            for loop in loops
            if any(
                a.loop_header == loop.header.name
                for a in function.annotations
            )
        )
        recipe = parallelization_from_pspdg(graph, annotated, fresh)
        result = run_parallel(fresh, [recipe], workers=4, seed=seed)
        assert result.formatted_output() == expected, f"seed={seed}"
