"""Adaptive mid-run replanning: divergence detection, adoption, safety.

The contract under test: replanning changes *cost decisions only* —
backend overrides and tiles of regions whose measured timings diverge
from the plan's predictions — never results, never the set of takeover
trigger headers, and never anything at all for recovery-inflated
dispatches (their timings measure the fault injector, not the machine).
"""

import pytest

from repro import Session
from repro.planner.calibration import CalibrationStore
from repro.planner.machine import MachineModel
from repro.runtime import knobs
from repro.workloads import kernel_names
from support.conformance import outputs_close

#: Thresholds absurdly low: every region looks worth dispatching, so a
#: processes run pays per-dispatch wire costs the model claimed were
#: free — exactly the mis-calibration adaptive replanning must recover.
MISCALIBRATED = MachineModel(
    serial_region_cost=1,
    threads_region_cost=2,
    payload_cost_per_byte=1e-9,
)


def miscalibrated_session(**overrides):
    overrides.setdefault("opt_level", 2)
    overrides.setdefault("backend", "processes")
    overrides.setdefault("workers", 4)
    return Session.from_kernel("LU", machine=MISCALIBRATED, **overrides)


class TestReplanTriggers:
    @pytest.fixture(scope="class")
    def adaptive_run(self):
        session = miscalibrated_session()
        result = session.run("PS-PDG", adaptive=True)
        return session, result

    def test_divergence_fires_replan_events(self, adaptive_run):
        _session, result = adaptive_run
        assert result.replan_events
        event = result.replan_events[0]
        assert event["reasons"]
        assert event["changes"]
        assert all(
            reason["kind"] in (
                "dispatch-overhead", "imbalance", "payload-bytes"
            )
            for reason in event["reasons"]
        )

    def test_replans_reroute_but_never_drop_regions(self, adaptive_run):
        session, result = adaptive_run
        plain = miscalibrated_session().run("PS-PDG")
        # Same dispatch count: a mid-run serialization reroutes a
        # region's backend, it never removes the trigger header.
        assert len(result.parallel_regions) == len(plain.parallel_regions)
        assert [r["header"] for r in result.parallel_regions] == \
            [r["header"] for r in plain.parallel_regions]

    def test_results_identical_to_non_adaptive(self, adaptive_run):
        _session, result = adaptive_run
        plain = miscalibrated_session().run("PS-PDG")
        assert result.formatted_output() == plain.formatted_output()

    def test_rpl_column_and_stats(self, adaptive_run):
        session, result = adaptive_run
        assert sum(r.get("replans", 0) for r in result.parallel_regions) \
            == len(result.replan_events)
        report = session.diagnostics.parallel_report()
        assert "rpl" in report.splitlines()[0]

    def test_replans_surface_in_payload_feedback(self, adaptive_run):
        session, _result = adaptive_run
        _bytes, _warm, _speedup, recovery = (
            session.diagnostics.payload_feedback()
        )
        assert sum(
            entry.get("replans", 0) for entry in recovery.values()
        ) >= 1

    def test_events_record_calibrated_coefficients(self, adaptive_run):
        _session, result = adaptive_run
        machine = result.replan_events[0]["machine"]
        assert machine  # at least one measured coefficient
        assert all(value > 0 for value in machine.values())

    def test_mid_run_observations_feed_session_store(self, adaptive_run):
        session, _result = adaptive_run
        assert session.calibration.observed


class TestNoSpuriousReplans:
    def test_well_calibrated_simulated_run_stays_quiet(self):
        # The oracle's workers are untimed: no overhead signal, and a
        # balanced kernel gives no imbalance signal either.
        session = Session.from_kernel("IS", opt_level=2, workers=4)
        result = session.run("PS-PDG", adaptive=True)
        assert result.replan_events == []
        assert session.diagnostics.payload_feedback()[3] == {}

    def test_adaptive_off_never_replans(self):
        session = miscalibrated_session()
        result = session.run("PS-PDG")
        assert result.replan_events == []


class TestAdaptiveConformance:
    """Replanning changes cost decisions only, never results."""

    @pytest.mark.parametrize("kernel", kernel_names())
    @pytest.mark.parametrize("backend", ("simulated", "threads"))
    @pytest.mark.parametrize("opt", (0, 2))
    def test_kernels_conform(self, kernel, backend, opt):
        session = Session.from_kernel(
            kernel, opt_level=opt, backend=backend, workers=4,
        )
        expected = session.execution.output
        result = session.run("PS-PDG", adaptive=True)
        assert outputs_close(result.output, expected)

    @pytest.mark.parametrize("kernel", ("IS", "LU", "CG"))
    def test_processes_kernels_conform(self, kernel):
        session = Session.from_kernel(
            kernel, opt_level=2, backend="processes", workers=4,
            machine=MISCALIBRATED,
        )
        expected = session.execution.output
        result = session.run("PS-PDG", adaptive=True)
        assert outputs_close(result.output, expected)

    def test_compiled_regions_conform_with_adaptive(self):
        session = miscalibrated_session(compile_regions=True)
        expected = session.execution.output
        result = session.run("PS-PDG", adaptive=True)
        assert outputs_close(result.output, expected)


class TestChaosInteraction:
    """REPRO_FAULTS + adaptive: the deferred-apply invariant holds and
    recovery-inflated timings never reach the calibration store."""

    def test_faulted_run_still_conforms(self):
        knobs.REPRO_FAULTS.value = "crash:region=1:worker=0:times=1"
        knobs.REPRO_REGION_TIMEOUT.value = 20.0
        try:
            session = miscalibrated_session()
            expected = session.execution.output
            result = session.run("PS-PDG", adaptive=True)
        finally:
            knobs.refresh()
        assert outputs_close(result.output, expected)
        faulted = [
            r for r in result.parallel_regions
            if r.get("retries") or r.get("failovers")
            or r.get("faults_injected")
        ]
        assert faulted  # the scenario actually fired
        # A recovery-inflated dispatch never triggers a replan itself.
        assert all(r.get("replans", 0) == 0 for r in faulted)

    def test_faulted_regions_never_calibrate(self):
        store = CalibrationStore()
        session = miscalibrated_session()
        result = session.run("PS-PDG")
        faulted = [dict(r, retries=1) for r in result.parallel_regions]
        assert store.observe_run(faulted) is False
        assert not store.observed
