"""Shared test-support helpers (conformance comparison, program generator)."""
