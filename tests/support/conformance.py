"""Output comparison for the differential conformance suite.

Backends may reassociate floating-point reductions (per-worker partial
sums merged in worker order), so float values compare with
:func:`math.isclose`; everything else — labels, shapes, ints, bools —
must be bitwise equal.
"""

import math

REL_TOL = 1e-9
ABS_TOL = 1e-12


def values_close(a, b):
    if isinstance(a, float) or isinstance(b, float):
        if isinstance(a, bool) or isinstance(b, bool):
            return a == b
        return math.isclose(a, b, rel_tol=REL_TOL, abs_tol=ABS_TOL)
    return a == b


def outputs_close(actual, expected):
    """True when two interpreter ``output`` lists agree (floats: isclose)."""
    if len(actual) != len(expected):
        return False
    for (label_a, values_a), (label_b, values_b) in zip(actual, expected):
        if label_a != label_b or len(values_a) != len(values_b):
            return False
        for value_a, value_b in zip(values_a, values_b):
            if not values_close(value_a, value_b):
                return False
    return True


def describe_mismatch(actual, expected):
    return f"parallel output {actual!r} != sequential output {expected!r}"
