"""Output comparison for the differential conformance suite.

Backends may reassociate floating-point reductions (per-worker partial
sums merged in worker order), so float values compare with
:func:`math.isclose`; everything else — labels, shapes, ints, bools —
must be bitwise equal.
"""

import math

REL_TOL = 1e-9
ABS_TOL = 1e-12


def values_close(a, b):
    if isinstance(a, float) or isinstance(b, float):
        if isinstance(a, bool) or isinstance(b, bool):
            return a == b
        return math.isclose(a, b, rel_tol=REL_TOL, abs_tol=ABS_TOL)
    return a == b


def outputs_close(actual, expected):
    """True when two interpreter ``output`` lists agree (floats: isclose)."""
    if len(actual) != len(expected):
        return False
    for (label_a, values_a), (label_b, values_b) in zip(actual, expected):
        if label_a != label_b or len(values_a) != len(values_b):
            return False
        for value_a, value_b in zip(values_a, values_b):
            if not values_close(value_a, value_b):
                return False
    return True


def describe_mismatch(actual, expected):
    return f"parallel output {actual!r} != sequential output {expected!r}"


# -- chaos conformance ---------------------------------------------------------
#
# Fault-injection sweeps assert a two-outcome contract: a faulted run
# either recovers to the fault-free output or surfaces a clean
# EmulationError.  Hangs, silent corruption, and non-Emulation
# exceptions all violate it.

#: Deterministic fault scenarios every kernel must survive (recover or
#: fail cleanly).  Region/worker selectors hit the first regions any
#: multi-region kernel dispatches; single-region kernels simply match
#: fewer of them.
CHAOS_SCENARIOS = (
    "crash:region=0:worker=0",
    "corrupt_wire:region=0:worker=1",
    "drop_result:region=1:worker=0",
    "crash:region=0:worker=0;corrupt_wire:region=1;drop_result:region=2",
)


def chaos_outcome(run):
    """Run ``run()`` under injected faults; classify the result.

    Returns ``("ok", output)`` when the run completes, or
    ``("error", exc)`` when it surfaces a clean
    :class:`~repro.util.errors.EmulationError`.  Any other exception —
    including infra leakage like ``BrokenProcessPool`` — propagates,
    failing the test: fault tolerance must never turn an injected fault
    into an unclassified crash.
    """
    from repro.util.errors import EmulationError

    try:
        return ("ok", run())
    except EmulationError as exc:
        return ("error", exc)


# -- per-worker load-balance diffing -------------------------------------------
#
# Region stats carry deterministic per-worker step counts (partitioning
# is decided once, by the scheduler), so schedules can be compared for
# load balance without wall-clock noise.

#: A schedule whose imbalance exceeds a baseline's by more than this
#: factor is flagged as a load-balance regression.
BALANCE_REGRESSION_FACTOR = 1.5


def worker_imbalance(region):
    """max/mean per-worker steps for one region (1.0 = perfectly even).

    Workers with no iterations are excluded from the mean: a 20-iteration
    loop on 8 workers idles some of them under any chunking, which is a
    partition-width property, not a balance property of the schedule.
    """
    steps = [
        worker["steps"]
        for worker in region["per_worker"]
        if worker["iterations"]
    ]
    if not steps or sum(steps) == 0:
        return 1.0
    mean = sum(steps) / len(steps)
    return max(steps) / mean


def schedule_imbalance(regions):
    """Worst per-region imbalance across a run's parallel regions."""
    if not regions:
        return 1.0
    return max(worker_imbalance(region) for region in regions)


def diff_load_balance(baseline_regions, candidate_regions,
                      factor=BALANCE_REGRESSION_FACTOR):
    """Compare two runs' per-worker balance; return flagged regressions.

    Returns a list of dicts (one per flagged candidate region) with the
    region header and both imbalance figures — empty when the candidate
    schedule is at most ``factor`` times worse than the baseline's worst
    region.
    """
    baseline = schedule_imbalance(baseline_regions)
    flagged = []
    for region in candidate_regions:
        imbalance = worker_imbalance(region)
        if imbalance > baseline * factor:
            flagged.append({
                "header": region["header"],
                "imbalance": imbalance,
                "baseline": baseline,
            })
    return flagged
