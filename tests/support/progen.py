"""Seeded random MiniOMP program generator for property tests.

Generates small, always-terminating programs — straight-line loop nests
over bounded iteration spaces with worksharing directives (reduction /
private / schedule clauses) — so that pipeline properties can be checked
over hundreds of cases without hand-writing them:

* parse -> print -> parse round-trips are stable,
* ``Session.plan()`` never crashes,
* every generated program interprets deterministically,
* the ``-O3`` transforms (:func:`generate_nest_program` emits perfect
  serial-outer / workshared-inner nests in interchange-legal,
  inner-carried, and non-affine flavors) preserve semantics.

All randomness flows from one :class:`random.Random` seeded by the
caller, so failures reproduce from their case number alone.
"""

import random

_MAX_GLOBALS = 2
_MAX_SCALARS = 3
_MAX_LOOPS = 3
_MAX_BODY_STATEMENTS = 3
_ARRAY_SIZES = (8, 16)
_MATRIX_SIZES = (8, 12, 16)
_TRIP_COUNTS = (4, 6, 8, 12)


class _Generator:
    def __init__(self, rng, nests=False):
        self.rng = rng
        self.globals = []  # (name, size)
        self.matrices = []  # (name, size): square 2D globals for nests
        self.scalars = []  # scalar int vars declared before the loops
        self.counter = 0
        self.nests = nests  # force at least one perfect nest per program

    def fresh(self, prefix):
        self.counter += 1
        return f"{prefix}{self.counter}"

    # -- expressions (always non-negative ints) -----------------------------

    def expr(self, loop_var, depth=0, exclude=()):
        rng = self.rng
        readable = [s for s in self.scalars if s not in exclude]
        choices = ["literal", "loop_var"]
        if readable:
            choices.append("scalar")
        if depth < 2:
            choices += ["add", "mul", "mod"]
        kind = rng.choice(choices)
        if kind == "literal":
            return str(rng.randrange(0, 10))
        if kind == "loop_var":
            return loop_var
        if kind == "scalar":
            return rng.choice(readable)
        a = self.expr(loop_var, depth + 1, exclude)
        b = self.expr(loop_var, depth + 1, exclude)
        if kind == "add":
            return f"({a} + {b})"
        if kind == "mul":
            return f"({a} * {b})"
        return f"({a} % {rng.randrange(2, 16)})"

    def index(self, loop_var, size):
        return f"(({self.expr(loop_var)}) % {size})"

    # -- statements ----------------------------------------------------------
    #
    # Annotated (workshared) loops must be *honestly* parallel: the
    # PS-PDG trusts declared semantics, so a generated ``parallel_for``
    # whose body races (self-referential "reduction" updates, colliding
    # array writes, shared scalar stores) would make the chosen plan
    # legitimately diverge.  Sequential loops keep full generality.

    def body_statement(self, loop_var, reduction_var, annotated):
        rng = self.rng
        exclude = (reduction_var,) if annotated and reduction_var else ()
        kinds = []
        if self.globals:
            kinds.append("array_store")
        if reduction_var is not None:
            kinds.append("reduce")
        if self.scalars and not annotated:
            kinds.append("scalar_store")
        if not kinds:
            kinds = ["noop_temp"]
        kind = rng.choice(kinds)
        if kind == "array_store":
            name, size = rng.choice(self.globals)
            if annotated:
                # Disjoint per-iteration slot: index by the loop var
                # (trip counts are clamped to the array size).
                index = loop_var
            else:
                index = self.index(loop_var, size)
            return (
                f"    {name}[{index}] = "
                f"{self.expr(loop_var, exclude=exclude)};"
            )
        if kind == "reduce":
            return (
                f"    {reduction_var} = {reduction_var} + "
                f"{self.expr(loop_var, exclude=exclude)};"
            )
        if kind == "scalar_store":
            target = rng.choice(self.scalars)
            return f"    {target} = {self.expr(loop_var)};"
        temp = self.fresh("t")
        return (
            f"    var {temp}: int = "
            f"{self.expr(loop_var, exclude=exclude)};"
        )

    def loop(self):
        rng = self.rng
        loop_var = self.fresh("i")
        annotated = rng.random() < 0.6
        if annotated:
            bound = min((size for _name, size in self.globals),
                        default=max(_TRIP_COUNTS))
            trips = rng.choice([t for t in _TRIP_COUNTS if t <= bound])
        else:
            trips = rng.choice(_TRIP_COUNTS)
        lines = []
        reduction_var = None
        if annotated:
            clauses = []
            if self.scalars and rng.random() < 0.7:
                reduction_var = rng.choice(self.scalars)
                clauses.append(f"reduction(+: {reduction_var})")
            if rng.random() < 0.3:
                chunk = rng.randrange(1, 5)
                clauses.append(f"schedule(static, {chunk})")
            rendered = (" " + " ".join(clauses)) if clauses else ""
            lines.append(f"  pragma omp parallel_for{rendered}")
        lines.append(f"  for {loop_var} in 0..{trips} {{")
        for _ in range(rng.randrange(1, _MAX_BODY_STATEMENTS + 1)):
            lines.append(
                self.body_statement(loop_var, reduction_var, annotated)
            )
        lines.append("  }")
        return lines

    def nest(self):
        """A perfect serial-outer / workshared-inner nest over a matrix.

        Three seeded shapes, all race-free *within* one inner dispatch
        (the PS-PDG trusts the declared worksharing) but with different
        cross-outer behavior, so the ``-O3`` interchange pass sees
        provably-legal, provably-illegal, and undecidable nests:

        * ``legal`` — each iteration updates its own slot of its own
          outer row: direction vectors are ``(*, =)``, interchange fires.
        * ``carried`` — reads the *previous* outer row one column over:
          the dependence is carried by the inner loop across the nest,
          interchange must reject (conclusively — subscripts are affine).
        * ``nonaffine`` — writes through a modular column index: the
          static test is inconclusive, so ``-O3`` may only speculate and
          must let the oracle decide (here the slots are disjoint, so
          validation succeeds).
        """
        rng = self.rng
        name, size = rng.choice(self.matrices)
        outer_var = self.fresh("t")
        inner_var = self.fresh("i")
        shape = rng.choice(("legal", "carried", "nonaffine"))
        outer_trips = rng.choice([t for t in _TRIP_COUNTS if t <= size])
        if shape == "nonaffine":
            # The modular index doubles: keep i*2 injective mod size.
            inner_trips = rng.choice(
                [t for t in _TRIP_COUNTS if t <= size // 2]
            )
        else:
            inner_trips = rng.choice([t for t in _TRIP_COUNTS if t <= size])
        lines = [f"  for {outer_var} in 0..{outer_trips} {{"]
        lines.append("    pragma omp parallel_for")
        lines.append(f"    for {inner_var} in 0..{inner_trips} {{")
        if shape == "legal":
            lines.append(
                f"      {name}[{outer_var}][{inner_var}] = "
                f"{name}[{outer_var}][{inner_var}] + "
                f"{self.expr(inner_var)};"
            )
        elif shape == "carried":
            lines.append(
                f"      if ({outer_var} >= 1 && "
                f"{inner_var} < {inner_trips - 1}) {{"
            )
            lines.append(
                f"        {name}[{outer_var}][{inner_var}] = "
                f"{name}[{outer_var} - 1][{inner_var} + 1] + 1;"
            )
            lines.append("      }")
        else:
            temp = self.fresh("k")
            lines.append(
                f"      var {temp}: int = ({inner_var} * 2) % {size};"
            )
            lines.append(
                f"      {name}[{outer_var}][{temp}] = "
                f"{self.expr(inner_var)};"
            )
        lines.append("    }")
        lines.append("  }")
        return lines

    # -- whole programs -------------------------------------------------------

    def program(self):
        rng = self.rng
        lines = []
        for _ in range(rng.randrange(0, _MAX_GLOBALS + 1)):
            name = self.fresh("g")
            size = rng.choice(_ARRAY_SIZES)
            self.globals.append((name, size))
            lines.append(f"global {name}: int[{size}];")
        if self.nests or rng.random() < 0.4:
            name = self.fresh("m")
            size = rng.choice(_MATRIX_SIZES)
            self.matrices.append((name, size))
            lines.append(f"global {name}: int[{size}][{size}];")
        lines.append("func main() {")
        for _ in range(rng.randrange(1, _MAX_SCALARS + 1)):
            name = self.fresh("s")
            self.scalars.append(name)
            lines.append(f"  var {name}: int = {rng.randrange(0, 10)};")
        emitted_nest = False
        for _ in range(rng.randrange(1, _MAX_LOOPS + 1)):
            if self.matrices and rng.random() < (0.7 if self.nests else 0.3):
                lines.extend(self.nest())
                emitted_nest = True
            else:
                lines.extend(self.loop())
        if self.nests and not emitted_nest:
            lines.extend(self.nest())
        observed = list(self.scalars)
        for name, size in self.globals:
            observed.append(f"{name}[0]")
            observed.append(f"{name}[{size - 1}]")
        for name, size in self.matrices:
            observed.append(f"{name}[0][0]")
            observed.append(f"{name}[1][{size // 2}]")
            observed.append(f"{name}[{size - 1}][{size - 1}]")
        lines.append(f'  print("observed", {", ".join(observed)});')
        lines.append("}")
        return "\n".join(lines) + "\n"


def generate_program(seed):
    """One deterministic MiniOMP program for ``seed``."""
    return _Generator(random.Random(seed)).program()


def generate_nest_program(seed):
    """Like :func:`generate_program`, but with at least one perfect
    serial-outer / workshared-inner nest — the ``-O3`` interchange
    corpus."""
    return _Generator(random.Random(seed), nests=True).program()


def generate_programs(count, base_seed=0):
    """``count`` deterministic programs, seeds ``base_seed..+count``."""
    return [generate_program(base_seed + i) for i in range(count)]
