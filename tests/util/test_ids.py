"""IdAllocator determinism."""

from repro.util import IdAllocator


def test_unprefixed_ids_are_integers():
    ids = IdAllocator()
    assert ids.fresh() == 0
    assert ids.fresh() == 1


def test_prefixed_ids_are_strings():
    ids = IdAllocator("ctx")
    assert ids.fresh() == "ctx0"
    assert ids.fresh() == "ctx1"


def test_peek_does_not_consume():
    ids = IdAllocator("x")
    assert ids.peek() == "x0"
    assert ids.peek() == "x0"
    assert ids.fresh() == "x0"
    assert ids.peek() == "x1"


def test_reset_restarts():
    ids = IdAllocator("r")
    ids.fresh()
    ids.fresh()
    ids.reset()
    assert ids.fresh() == "r0"


def test_independent_allocators_do_not_share_state():
    a = IdAllocator("a")
    b = IdAllocator("a")
    assert a.fresh() == "a0"
    assert b.fresh() == "a0"
