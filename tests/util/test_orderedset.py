"""OrderedSet: set semantics with deterministic iteration order."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import OrderedSet


class TestBasics:
    def test_preserves_insertion_order(self):
        s = OrderedSet([3, 1, 2])
        assert list(s) == [3, 1, 2]

    def test_deduplicates(self):
        s = OrderedSet([1, 2, 1, 3, 2])
        assert list(s) == [1, 2, 3]

    def test_add_existing_keeps_position(self):
        s = OrderedSet([1, 2, 3])
        s.add(1)
        assert list(s) == [1, 2, 3]

    def test_membership(self):
        s = OrderedSet([1, 2])
        assert 1 in s
        assert 5 not in s

    def test_len_and_bool(self):
        assert len(OrderedSet()) == 0
        assert not OrderedSet()
        assert OrderedSet([1])

    def test_discard_missing_is_noop(self):
        s = OrderedSet([1])
        s.discard(42)
        assert list(s) == [1]

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            OrderedSet([1]).remove(42)

    def test_pop_first_is_fifo(self):
        s = OrderedSet([5, 6, 7])
        assert s.pop_first() == 5
        assert s.pop_first() == 6
        assert list(s) == [7]

    def test_update(self):
        s = OrderedSet([1])
        s.update([2, 1, 3])
        assert list(s) == [1, 2, 3]

    def test_equality_with_set(self):
        assert OrderedSet([1, 2]) == {2, 1}
        assert OrderedSet([1, 2]) == OrderedSet([2, 1])

    def test_union_intersection_difference(self):
        a = OrderedSet([1, 2, 3])
        b = OrderedSet([2, 3, 4])
        assert list(a.union(b)) == [1, 2, 3, 4]
        assert list(a.intersection(b)) == [2, 3]
        assert list(a.difference(b)) == [1]


class TestProperties:
    @given(st.lists(st.integers()))
    def test_matches_set_semantics(self, items):
        ordered = OrderedSet(items)
        assert set(ordered) == set(items)
        assert len(ordered) == len(set(items))

    @given(st.lists(st.integers(), unique=True))
    def test_order_is_insertion_order_for_unique_items(self, items):
        assert list(OrderedSet(items)) == items

    @given(st.lists(st.integers()), st.lists(st.integers()))
    def test_union_matches_set_union(self, a, b):
        assert set(OrderedSet(a).union(OrderedSet(b))) == set(a) | set(b)
