"""NAS mini-kernels: correctness, determinism, and evaluation shapes."""

import pytest

from repro.emulator import run_module
from repro.ir import verify_module
from repro.planner import (
    fig13_options,
    fig14_critical_paths,
    prepare_benchmark,
)
from repro.workloads import build_kernel, kernel_names

ALL = kernel_names()


@pytest.fixture(scope="module")
def setups():
    prepared = {}
    for name in ALL:
        module = build_kernel(name)
        prepared[name] = prepare_benchmark(name, module)
    return prepared


@pytest.mark.parametrize("name", ALL)
def test_kernel_compiles_and_verifies(name):
    module = build_kernel(name)
    verify_module(module)


@pytest.mark.parametrize("name", ALL)
def test_kernel_runs_deterministically(name):
    first = run_module(build_kernel(name)).formatted_output()
    second = run_module(build_kernel(name)).formatted_output()
    assert first == second
    assert first, "kernels must print a checksum"


@pytest.mark.parametrize("name", ALL)
def test_kernel_has_worksharing_annotations(name):
    module = build_kernel(name)
    function = module.function("main")
    assert any(
        a.directive.declares_loop_independence()
        for a in function.annotations
    )


@pytest.mark.parametrize("name", ALL)
def test_fig13_ordering_invariants(setups, name):
    report = fig13_options(setups[name])
    totals = report.totals
    # The PS-PDG can always leverage at least everything J&K can (§6.2).
    assert totals["PS-PDG"] >= totals["J&K"]
    # Both see at least the loops the sequential PDG can analyze.
    assert totals["PS-PDG"] >= totals["PDG"]
    # The compiler considers more plans than the static source encoding.
    assert totals["PS-PDG"] >= totals["OpenMP"]


@pytest.mark.parametrize("name", ALL)
def test_fig14_ordering_invariants(setups, name):
    results = fig14_critical_paths(setups[name])
    # "For benchmarks with good parallelization coverage by the
    # programmer, the PS-PDG ensures no loss of parallelism" — and in
    # general it never falls below the source plan.
    assert results["PS-PDG"]["speedup"] >= 0.999
    assert (
        results["PS-PDG"]["critical_path"]
        <= results["J&K"]["critical_path"]
    )
    # Critical paths never exceed sequential execution.
    sequential = results["Sequential"]["critical_path"]
    for key in ("OpenMP", "PDG", "J&K", "PS-PDG"):
        assert results[key]["critical_path"] <= sequential


def test_ep_is_flat_across_abstractions(setups):
    """Paper: EP's programmer plan is already optimal (Fig. 13/14)."""
    results = fig14_critical_paths(setups["EP"])
    assert results["PDG"]["speedup"] == pytest.approx(1.0, rel=0.05)
    assert results["PS-PDG"]["speedup"] == pytest.approx(1.0, rel=0.05)


def test_pdg_loses_badly_on_outer_stepping_benchmarks(setups):
    """Paper Fig. 14: the PDG (outermost-loop methodology) falls below
    the OpenMP plan on benchmarks whose hot loops are inner (e.g. IS)."""
    for name in ("IS", "MG", "SP", "BT", "FT", "LU"):
        results = fig14_critical_paths(setups[name])
        assert results["PDG"]["speedup"] < 1.0, name


def test_jk_insufficient_on_mg(setups):
    """Paper: worksharing-improved dependence analysis cannot match the
    PS-PDG on MG (private-array semantics)."""
    results = fig14_critical_paths(setups["MG"])
    assert (
        results["PS-PDG"]["critical_path"]
        < results["J&K"]["critical_path"]
    )


def test_pspdg_beats_jk_on_is(setups):
    """Paper: J&K unlocks less than the PS-PDG on IS."""
    results = fig14_critical_paths(setups["IS"])
    assert results["PS-PDG"]["speedup"] > results["J&K"]["speedup"]


def test_pspdg_construction_statistics(setups):
    """§6.1: the PS-PDG is generated for every benchmark, with features."""
    for name in ALL:
        stats = setups[name].pspdg.statistics()
        assert stats["hierarchical_nodes"] > 0
        assert stats["contexts"] > 0
        assert stats["relaxations"] > 0, name
